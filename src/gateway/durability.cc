// Copyright 2026 The LearnRisk Authors

#include "gateway/durability.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace learnrisk {
namespace {

constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestTmpName[] = "MANIFEST.tmp";
constexpr char kManifestHeader[] = "learnrisk-namespace-manifest v1";
constexpr char kSegmentHeader[] = "learnrisk-seg v1\n";
constexpr char kReviewSegmentHeader[] = "learnrisk-rev v1\n";
constexpr char kWalHeader[] = "learnrisk-wal v1\n";

// WAL frame payload discriminator (payload byte 0). Record frames predate
// the review kinds, so their two values double as the blocking side.
constexpr char kPayloadRecordLeft = '\0';
constexpr char kPayloadRecordRight = '\1';
constexpr char kPayloadReviewOffer = '\2';
constexpr char kPayloadReviewDrain = '\3';
constexpr char kPayloadReviewLabel = '\4';
// A single record entry can't plausibly exceed this; a "valid" length above
// it is treated as tail corruption rather than allocated.
constexpr uint32_t kMaxFramePayload = 1u << 30;

// --- Little-endian integer framing (byte shifts: host-endian agnostic). ----

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutI64(std::string* out, int64_t v) { PutU64(out, static_cast<uint64_t>(v)); }

void PutBytes(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

// Cursor-style readers: advance *p, fail when fewer than the needed bytes
// remain before `end`.
bool GetU32(const char** p, const char* end, uint32_t* v) {
  if (end - *p < 4) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<unsigned char>((*p)[i])) << (8 * i);
  }
  *p += 4;
  *v = out;
  return true;
}

bool GetU64(const char** p, const char* end, uint64_t* v) {
  if (end - *p < 8) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<unsigned char>((*p)[i])) << (8 * i);
  }
  *p += 8;
  *v = out;
  return true;
}

bool GetI64(const char** p, const char* end, int64_t* v) {
  uint64_t u = 0;
  if (!GetU64(p, end, &u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

bool GetBytes(const char** p, const char* end, std::string* s) {
  uint32_t n = 0;
  if (!GetU32(p, end, &n)) return false;
  if (static_cast<size_t>(end - *p) < n) return false;
  s->assign(*p, n);
  *p += n;
  return true;
}

// --- Record payloads (shared by WAL frames and checkpoint segments). -------

void EncodeRecord(std::string* out, const Record& record, int64_t entity_id) {
  PutI64(out, entity_id);
  PutU32(out, static_cast<uint32_t>(record.values.size()));
  for (const std::string& v : record.values) PutBytes(out, v);
}

bool DecodeRecord(const char** p, const char* end, Record* record,
                  int64_t* entity_id) {
  uint32_t width = 0;
  if (!GetI64(p, end, entity_id) || !GetU32(p, end, &width)) return false;
  // Each value carries at least its length prefix: a width larger than the
  // remaining bytes allow is corruption, rejected before the reserve so a
  // corrupt-but-checksummed payload cannot force a huge allocation.
  if (width > static_cast<uint64_t>(end - *p) / sizeof(uint32_t)) return false;
  record->values.clear();
  record->values.reserve(width);
  for (uint32_t i = 0; i < width; ++i) {
    std::string v;
    if (!GetBytes(p, end, &v)) return false;
    record->values.push_back(std::move(v));
  }
  return true;
}

// --- Review payloads (WAL frames and the checkpoint review segment). -------
// Doubles travel as their IEEE-754 bit pattern so replay reproduces risk
// ordering bit-exactly.

void PutF64(std::string* out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

bool GetF64(const char** p, const char* end, double* v) {
  uint64_t bits = 0;
  if (!GetU64(p, end, &bits)) return false;
  std::memcpy(v, &bits, sizeof(bits));
  return true;
}

void EncodeReviewItem(std::string* out, const ReviewItem& item) {
  PutI64(out, item.left);
  PutI64(out, item.right);
  PutF64(out, item.risk);
  PutF64(out, item.classifier_prob);
  out->push_back(static_cast<char>(item.machine_label));
  PutU64(out, item.model_version);
  PutU64(out, item.request_id);
  PutU32(out, static_cast<uint32_t>(item.features.size()));
  for (double f : item.features) PutF64(out, f);
}

bool DecodeReviewItem(const char** p, const char* end, ReviewItem* item) {
  uint32_t width = 0;
  if (!GetI64(p, end, &item->left) || !GetI64(p, end, &item->right) ||
      !GetF64(p, end, &item->risk) ||
      !GetF64(p, end, &item->classifier_prob)) {
    return false;
  }
  if (*p == end) return false;
  item->machine_label = static_cast<uint8_t>(*(*p)++);
  if (!GetU64(p, end, &item->model_version) ||
      !GetU64(p, end, &item->request_id) || !GetU32(p, end, &width)) {
    return false;
  }
  // Every feature is 8 payload bytes: bound the width by what the payload
  // can actually hold before reserving, so a corrupt-but-CRC-consistent
  // frame cannot force a multi-GB transient allocation.
  if (width > static_cast<uint64_t>(end - *p) / sizeof(uint64_t)) return false;
  item->features.clear();
  item->features.reserve(width);
  for (uint32_t i = 0; i < width; ++i) {
    double f = 0;
    if (!GetF64(p, end, &f)) return false;
    item->features.push_back(f);
  }
  return true;
}

// Review WAL event payload: kind byte, then the full item (offers) or the
// pair key (drains; labels add the truth byte).
std::string EncodeReviewEvent(const ReviewWalEvent& event) {
  std::string payload;
  switch (event.kind) {
    case ReviewWalEvent::Kind::kOffer:
      payload.push_back(kPayloadReviewOffer);
      EncodeReviewItem(&payload, event.item);
      break;
    case ReviewWalEvent::Kind::kDrain:
      payload.push_back(kPayloadReviewDrain);
      PutI64(&payload, event.item.left);
      PutI64(&payload, event.item.right);
      break;
    case ReviewWalEvent::Kind::kLabel:
      payload.push_back(kPayloadReviewLabel);
      PutI64(&payload, event.item.left);
      PutI64(&payload, event.item.right);
      payload.push_back(static_cast<char>(event.truth));
      break;
  }
  return payload;
}

// Decodes the payload *after* the kind byte; `kind` is that byte.
bool DecodeReviewEvent(char kind, const char** p, const char* end,
                       ReviewWalEvent* event) {
  if (kind == kPayloadReviewOffer) {
    event->kind = ReviewWalEvent::Kind::kOffer;
    return DecodeReviewItem(p, end, &event->item);
  }
  if (!GetI64(p, end, &event->item.left) ||
      !GetI64(p, end, &event->item.right)) {
    return false;
  }
  if (kind == kPayloadReviewDrain) {
    event->kind = ReviewWalEvent::Kind::kDrain;
    return true;
  }
  event->kind = ReviewWalEvent::Kind::kLabel;
  if (*p == end) return false;
  event->truth = static_cast<uint8_t>(*(*p)++);
  return true;
}

Status EnsureDirectory(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create directory '" + dir +
                           "': " + ec.message());
  }
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IOError("error reading '" + path + "'");
  return buf.str();
}

// Schema fingerprint recorded in the manifest: "name:type" per attribute,
// spaces in names folded to '_' (the fingerprint only needs to be
// comparable, not reversible).
std::string SchemaFingerprint(const Schema& schema) {
  std::ostringstream out;
  out << schema.num_attributes();
  for (const Attribute& attr : schema.attributes()) {
    std::string name = attr.name;
    for (char& c : name) {
      if (c == ' ' || c == '\n') c = '_';
    }
    out << ' ' << name << ':' << static_cast<int>(attr.type);
  }
  return out.str();
}

std::string SegmentFileName(uint64_t id, bool left) {
  return "ckpt_" + std::to_string(id) + (left ? "_left.seg" : "_right.seg");
}

std::string ModelFileName(uint64_t id) {
  return "model_" + std::to_string(id) + ".model";
}

std::string WalFileName(uint64_t id) {
  return "wal_" + std::to_string(id) + ".log";
}

std::string ReviewSegmentFileName(uint64_t id) {
  return "ckpt_" + std::to_string(id) + "_review.seg";
}

// Parsed manifest contents (paths are file names relative to the namespace
// directory).
struct Manifest {
  uint64_t checkpoint_id = 0;
  bool dedup = false;
  std::string schema_fingerprint;
  std::string left_file;
  size_t left_records = 0;
  std::string right_file;
  size_t right_records = 0;
  std::string model_file;
  uint64_t model_version = 0;
  std::string wal_file;
  std::string review_file;  ///< empty = no review state at checkpoint time
  size_t review_queued = 0;
  size_t review_outstanding = 0;
  size_t review_labeled = 0;
};

std::string SerializeManifest(const Manifest& m) {
  std::ostringstream body;
  body << kManifestHeader << "\n";
  body << "checkpoint " << m.checkpoint_id << "\n";
  body << "dedup " << (m.dedup ? 1 : 0) << "\n";
  body << "schema " << m.schema_fingerprint << "\n";
  body << "left " << m.left_file << " " << m.left_records << "\n";
  if (!m.dedup) {
    body << "right " << m.right_file << " " << m.right_records << "\n";
  }
  if (m.model_version > 0) {
    body << "model " << m.model_file << " " << m.model_version << "\n";
  }
  if (!m.review_file.empty()) {
    body << "review " << m.review_file << " " << m.review_queued << " "
         << m.review_outstanding << " " << m.review_labeled << "\n";
  }
  body << "wal " << m.wal_file << "\n";
  std::string text = body.str();
  char crc_line[32];
  std::snprintf(crc_line, sizeof(crc_line), "crc %08x\n",
                Crc32(text.data(), text.size()));
  return text + crc_line;
}

Result<Manifest> ParseManifest(const std::string& text,
                               const std::string& path) {
  // The last line must be the CRC trailer over everything before it.
  const size_t crc_pos = text.rfind("crc ");
  if (crc_pos == std::string::npos || (crc_pos != 0 && text[crc_pos - 1] != '\n')) {
    return Status::InvalidArgument("corrupt manifest '" + path +
                                   "': missing crc trailer");
  }
  uint32_t stored = 0;
  if (std::sscanf(text.c_str() + crc_pos, "crc %x", &stored) != 1) {
    return Status::InvalidArgument("corrupt manifest '" + path +
                                   "': unparseable crc trailer");
  }
  if (Crc32(text.data(), crc_pos) != stored) {
    return Status::InvalidArgument("corrupt manifest '" + path +
                                   "': body does not match its crc");
  }

  std::istringstream in(text.substr(0, crc_pos));
  std::string line;
  if (!std::getline(in, line) || line != kManifestHeader) {
    return Status::InvalidArgument("corrupt manifest '" + path +
                                   "': unrecognized header '" + line + "'");
  }
  Manifest m;
  bool saw_left = false;
  bool saw_wal = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    bool ok = true;
    if (tag == "checkpoint") {
      ok = static_cast<bool>(fields >> m.checkpoint_id);
    } else if (tag == "dedup") {
      int flag = 0;
      ok = static_cast<bool>(fields >> flag);
      m.dedup = flag != 0;
    } else if (tag == "schema") {
      std::getline(fields, m.schema_fingerprint);
      // Drop the separating space after the tag.
      if (!m.schema_fingerprint.empty() && m.schema_fingerprint.front() == ' ') {
        m.schema_fingerprint.erase(0, 1);
      }
    } else if (tag == "left") {
      ok = static_cast<bool>(fields >> m.left_file >> m.left_records);
      saw_left = ok;
    } else if (tag == "right") {
      ok = static_cast<bool>(fields >> m.right_file >> m.right_records);
    } else if (tag == "model") {
      ok = static_cast<bool>(fields >> m.model_file >> m.model_version);
    } else if (tag == "review") {
      ok = static_cast<bool>(fields >> m.review_file >> m.review_queued >>
                             m.review_outstanding >> m.review_labeled);
    } else if (tag == "wal") {
      ok = static_cast<bool>(fields >> m.wal_file);
      saw_wal = ok;
    } else {
      ok = false;
    }
    if (!ok) {
      return Status::InvalidArgument("corrupt manifest '" + path +
                                     "': malformed line '" + line + "'");
    }
  }
  if (m.checkpoint_id == 0 || !saw_left || !saw_wal) {
    return Status::InvalidArgument("corrupt manifest '" + path +
                                   "': missing checkpoint/left/wal record");
  }
  if (!m.dedup && m.right_file.empty()) {
    return Status::InvalidArgument("corrupt manifest '" + path +
                                   "': two-table manifest without a right "
                                   "segment");
  }
  return m;
}

// Loads one checkpoint segment file into `table` (which carries the schema).
Status LoadSegmentFile(const std::string& path, size_t expected_records,
                       Table* table) {
  if (!std::filesystem::exists(path)) {
    return Status::IOError("manifest references missing segment file '" +
                           path + "'");
  }
  Result<std::string> data = ReadFile(path);
  if (!data.ok()) return data.status();
  const std::string& bytes = *data;
  const size_t header_len = std::strlen(kSegmentHeader);
  if (bytes.size() < header_len ||
      bytes.compare(0, header_len, kSegmentHeader) != 0) {
    return Status::IOError("corrupt checkpoint segment '" + path +
                           "': bad header");
  }
  const char* p = bytes.data() + header_len;
  const char* end = bytes.data() + bytes.size();
  uint64_t payload_size = 0;
  uint32_t stored_crc = 0;
  if (!GetU64(&p, end, &payload_size) || !GetU32(&p, end, &stored_crc) ||
      static_cast<uint64_t>(end - p) != payload_size) {
    return Status::IOError("corrupt checkpoint segment '" + path +
                           "': truncated or oversized payload");
  }
  if (Crc32(p, payload_size) != stored_crc) {
    return Status::IOError("corrupt checkpoint segment '" + path +
                           "': payload does not match its crc");
  }
  uint64_t num_records = 0;
  if (!GetU64(&p, end, &num_records) || num_records != expected_records) {
    return Status::IOError(
        "corrupt checkpoint segment '" + path +
        "': record count does not match the manifest");
  }
  for (uint64_t i = 0; i < num_records; ++i) {
    Record record;
    int64_t entity_id = -1;
    if (!DecodeRecord(&p, end, &record, &entity_id)) {
      return Status::IOError("corrupt checkpoint segment '" + path +
                             "': undecodable record " + std::to_string(i));
    }
    if (record.values.size() != table->schema().num_attributes()) {
      return Status::InvalidArgument(
          "checkpoint segment '" + path + "' record " + std::to_string(i) +
          " width does not match the namespace schema");
    }
    LEARNRISK_RETURN_NOT_OK(table->Append(std::move(record), entity_id));
  }
  return Status::OK();
}

void RemoveIfExists(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  // CRC-32/IEEE (reflected 0xEDB88320), table computed on first use.
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

NamespaceLog::~NamespaceLog() { CloseWal(); }

void NamespaceLog::CloseWal() {
  if (wal_ != nullptr) {
    std::fclose(wal_);
    wal_ = nullptr;
  }
}

Status NamespaceLog::OpenWal(const std::string& path) {
  CloseWal();
  wal_ = std::fopen(path.c_str(), "ab");
  if (wal_ == nullptr) {
    return Status::IOError("cannot open WAL '" + path + "' for appending");
  }
  wal_path_ = path;
  return Status::OK();
}

Status NamespaceLog::CrashPoint(const std::string& point) {
  if (hook_ && hook_(point)) {
    // Leave the partial bytes exactly as written — a killed process would —
    // and refuse all further IO from this incarnation.
    CloseWal();
    dead_ = true;
    return Status::IOError("simulated crash at '" + point + "'");
  }
  return Status::OK();
}

Result<std::unique_ptr<NamespaceLog>> NamespaceLog::Create(
    const DurabilityOptions& options, const std::string& ns) {
  const std::string ns_dir = options.dir + "/" + ns;
  LEARNRISK_RETURN_NOT_OK(EnsureDirectory(ns_dir));
  if (std::filesystem::exists(ns_dir + "/" + kManifestName)) {
    return Status::FailedPrecondition(
        "durable state already exists for namespace '" + ns +
        "'; recover it instead of re-registering");
  }
  // No committed manifest: anything present is debris from an interrupted
  // registration and can never be recovered — start clean.
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(ns_dir, ec)) {
    std::filesystem::remove_all(entry.path(), ec);
  }
  auto log = std::unique_ptr<NamespaceLog>(new NamespaceLog());
  log->ns_dir_ = ns_dir;
  log->hook_ = options.crash_hook;
  log->fsync_appends_ = options.fsync_appends;
  return log;
}

bool NamespaceLog::Exists(const std::string& dir, const std::string& ns) {
  return std::filesystem::exists(dir + "/" + ns + "/" + kManifestName);
}

Status NamespaceLog::Append(const WalEntry& entry) {
  std::string payload;
  payload.push_back(entry.side == BlockingSide::kLeft ? kPayloadRecordLeft
                                                      : kPayloadRecordRight);
  EncodeRecord(&payload, entry.record, entry.entity_id);
  return AppendFrame(payload);
}

Status NamespaceLog::AppendReview(const ReviewWalEvent& event) {
  return AppendFrame(EncodeReviewEvent(event));
}

Status NamespaceLog::AppendFrame(const std::string& payload) {
  if (dead_) {
    return Status::IOError("namespace log is dead after a simulated crash");
  }
  if (checkpoint_id_ == 0 || wal_ == nullptr) {
    return Status::Internal("WAL append before the first checkpoint");
  }
  std::string frame;
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload.data(), payload.size()));
  frame += payload;

  LEARNRISK_RETURN_NOT_OK(CrashPoint("wal:before_append"));
  // Written in two flushed halves so the mid-append crash point leaves a
  // genuinely torn frame on disk.
  const size_t half = frame.size() / 2;
  if (std::fwrite(frame.data(), 1, half, wal_) != half ||
      std::fflush(wal_) != 0) {
    return Status::IOError("WAL write failed: " + wal_path_);
  }
  LEARNRISK_RETURN_NOT_OK(CrashPoint("wal:mid_append"));
  if (std::fwrite(frame.data() + half, 1, frame.size() - half, wal_) !=
          frame.size() - half ||
      std::fflush(wal_) != 0) {
    return Status::IOError("WAL write failed: " + wal_path_);
  }
#ifndef _WIN32
  if (fsync_appends_ && ::fsync(fileno(wal_)) != 0) {
    return Status::IOError("WAL fsync failed: " + wal_path_);
  }
  if (fsync_appends_ && metrics_.wal_fsyncs != nullptr) {
    metrics_.wal_fsyncs->Add(1);
  }
#endif
  LEARNRISK_RETURN_NOT_OK(CrashPoint("wal:after_append"));
  ++wal_entries_;
  if (metrics_.wal_appends != nullptr) metrics_.wal_appends->Add(1);
  if (metrics_.wal_append_bytes != nullptr) {
    metrics_.wal_append_bytes->Add(frame.size());
  }
  return Status::OK();
}

namespace {

// Serializes one table into the checkpoint segment format.
std::string EncodeSegment(const Table& table) {
  std::string payload;
  PutU64(&payload, table.num_records());
  for (size_t i = 0; i < table.num_records(); ++i) {
    EncodeRecord(&payload, table.record(i), table.entity_id(i));
  }
  std::string out(kSegmentHeader);
  PutU64(&out, payload.size());
  PutU32(&out, Crc32(payload.data(), payload.size()));
  out += payload;
  return out;
}

// Serializes the review queue's checkpoint state (resident items, then
// outstanding items — each in enqueue order — then labeled items) with the
// same size+CRC framing as a table segment, under its own header.
std::string EncodeReviewSegment(const ReviewQueue::CheckpointState& state) {
  std::string payload;
  PutU64(&payload, state.queued.size());
  for (const ReviewItem& item : state.queued) {
    EncodeReviewItem(&payload, item);
  }
  PutU64(&payload, state.outstanding.size());
  for (const ReviewItem& item : state.outstanding) {
    EncodeReviewItem(&payload, item);
  }
  PutU64(&payload, state.labeled.size());
  for (const LabeledReview& label : state.labeled) {
    EncodeReviewItem(&payload, label.item);
    payload.push_back(static_cast<char>(label.truth));
  }
  std::string out(kReviewSegmentHeader);
  PutU64(&out, payload.size());
  PutU32(&out, Crc32(payload.data(), payload.size()));
  out += payload;
  return out;
}

Status LoadReviewSegment(const std::string& path, size_t expected_queued,
                         size_t expected_outstanding, size_t expected_labeled,
                         std::vector<ReviewItem>* queued,
                         std::vector<ReviewItem>* outstanding,
                         std::vector<LabeledReview>* labeled) {
  if (!std::filesystem::exists(path)) {
    return Status::IOError("manifest references missing review segment '" +
                           path + "'");
  }
  Result<std::string> data = ReadFile(path);
  if (!data.ok()) return data.status();
  const std::string& bytes = *data;
  const size_t header_len = std::strlen(kReviewSegmentHeader);
  if (bytes.size() < header_len ||
      bytes.compare(0, header_len, kReviewSegmentHeader) != 0) {
    return Status::IOError("corrupt review segment '" + path +
                           "': bad header");
  }
  const char* p = bytes.data() + header_len;
  const char* end = bytes.data() + bytes.size();
  uint64_t payload_size = 0;
  uint32_t stored_crc = 0;
  if (!GetU64(&p, end, &payload_size) || !GetU32(&p, end, &stored_crc) ||
      static_cast<uint64_t>(end - p) != payload_size) {
    return Status::IOError("corrupt review segment '" + path +
                           "': truncated or oversized payload");
  }
  if (Crc32(p, payload_size) != stored_crc) {
    return Status::IOError("corrupt review segment '" + path +
                           "': payload does not match its crc");
  }
  auto load_items = [&](const char* section, size_t expected,
                        std::vector<ReviewItem>* out) -> Status {
    uint64_t count = 0;
    if (!GetU64(&p, end, &count) || count != expected) {
      return Status::IOError("corrupt review segment '" + path + "': " +
                             section +
                             " count does not match the manifest");
    }
    out->clear();
    out->reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      ReviewItem item;
      if (!DecodeReviewItem(&p, end, &item)) {
        return Status::IOError("corrupt review segment '" + path +
                               "': undecodable " + section + " item " +
                               std::to_string(i));
      }
      out->push_back(std::move(item));
    }
    return Status::OK();
  };
  LEARNRISK_RETURN_NOT_OK(load_items("queued", expected_queued, queued));
  LEARNRISK_RETURN_NOT_OK(
      load_items("outstanding", expected_outstanding, outstanding));
  uint64_t num_labeled = 0;
  if (!GetU64(&p, end, &num_labeled) || num_labeled != expected_labeled) {
    return Status::IOError(
        "corrupt review segment '" + path +
        "': labeled count does not match the manifest");
  }
  labeled->clear();
  labeled->reserve(num_labeled);
  for (uint64_t i = 0; i < num_labeled; ++i) {
    LabeledReview label;
    if (!DecodeReviewItem(&p, end, &label.item) || p == end) {
      return Status::IOError("corrupt review segment '" + path +
                             "': undecodable labeled item " +
                             std::to_string(i));
    }
    label.truth = static_cast<uint8_t>(*p++);
    labeled->push_back(std::move(label));
  }
  if (p != end) {
    return Status::IOError("corrupt review segment '" + path +
                           "': trailing bytes after the labeled items");
  }
  return Status::OK();
}

}  // namespace

Status NamespaceLog::WriteCheckpoint(const Table& left, const Table* right,
                                     uint64_t model_version,
                                     const ModelSaver& save_model,
                                     const ReviewQueue::CheckpointState* review) {
  if (dead_) {
    return Status::IOError("namespace log is dead after a simulated crash");
  }
  const uint64_t id = checkpoint_id_ + 1;

  // 1. Immutable checkpoint segments. The left file is written in two
  //    flushed halves so the mid-segment crash point leaves a torn file —
  //    which the manifest never references, so recovery ignores it.
  auto write_file = [this](const std::string& path, const std::string& bytes,
                           const char* mid_point) -> Status {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open '" + path + "' for writing");
    const size_t half = mid_point != nullptr ? bytes.size() / 2 : bytes.size();
    out.write(bytes.data(), static_cast<std::streamsize>(half));
    out.flush();
    if (mid_point != nullptr) {
      LEARNRISK_RETURN_NOT_OK(CrashPoint(mid_point));
      out.write(bytes.data() + half,
                static_cast<std::streamsize>(bytes.size() - half));
    }
    out.close();
    if (!out) return Status::IOError("error writing '" + path + "'");
    return Status::OK();
  };

  Manifest m;
  m.checkpoint_id = id;
  m.dedup = right == nullptr;
  m.schema_fingerprint = SchemaFingerprint(left.schema());
  m.left_file = SegmentFileName(id, true);
  m.left_records = left.num_records();
  size_t segment_bytes = 0;
  {
    const std::string segment = EncodeSegment(left);
    segment_bytes += segment.size();
    LEARNRISK_RETURN_NOT_OK(write_file(ns_dir_ + "/" + m.left_file, segment,
                                       "checkpoint:mid_segment"));
  }
  if (right != nullptr) {
    m.right_file = SegmentFileName(id, false);
    m.right_records = right->num_records();
    const std::string segment = EncodeSegment(*right);
    segment_bytes += segment.size();
    LEARNRISK_RETURN_NOT_OK(
        write_file(ns_dir_ + "/" + m.right_file, segment, nullptr));
  }

  // 2. Model file (the served model at checkpoint time, if any).
  if (model_version > 0 && save_model != nullptr) {
    m.model_file = ModelFileName(id);
    m.model_version = model_version;
    LEARNRISK_RETURN_NOT_OK(save_model(ns_dir_ + "/" + m.model_file));
  }

  // 2b. Review segment: the queue's unlabeled items and collected labels at
  //     checkpoint time. Written even when both are empty so recovery can
  //     tell "review enabled, queue empty" from "no review state".
  if (review != nullptr) {
    m.review_file = ReviewSegmentFileName(id);
    m.review_queued = review->queued.size();
    m.review_outstanding = review->outstanding.size();
    m.review_labeled = review->labeled.size();
    const std::string segment = EncodeReviewSegment(*review);
    segment_bytes += segment.size();
    LEARNRISK_RETURN_NOT_OK(
        write_file(ns_dir_ + "/" + m.review_file, segment, nullptr));
  }

  // 3. Fresh (empty) WAL for the new checkpoint, created before the swap so
  //    the committed manifest never references a missing file.
  m.wal_file = WalFileName(id);
  LEARNRISK_RETURN_NOT_OK(
      write_file(ns_dir_ + "/" + m.wal_file, kWalHeader, nullptr));

  // 4. Manifest swap — the commit point. The temp file is written in two
  //    flushed halves (mid-manifest crash = torn MANIFEST.tmp, committed
  //    MANIFEST untouched), then renamed atomically over MANIFEST.
  const std::string tmp = ns_dir_ + "/" + kManifestTmpName;
  LEARNRISK_RETURN_NOT_OK(
      write_file(tmp, SerializeManifest(m), "checkpoint:mid_manifest"));
  LEARNRISK_RETURN_NOT_OK(CrashPoint("manifest:before_swap"));
  std::error_code ec;
  std::filesystem::rename(tmp, ns_dir_ + "/" + kManifestName, ec);
  if (ec) {
    return Status::IOError("cannot swap manifest in '" + ns_dir_ +
                           "': " + ec.message());
  }
  LEARNRISK_RETURN_NOT_OK(CrashPoint("manifest:after_swap"));

  // 5. The old checkpoint is now unreferenced; delete it (best effort — a
  //    crash here just leaves orphans that the next checkpoint removes).
  const uint64_t old = checkpoint_id_;
  if (old > 0) {
    RemoveIfExists(ns_dir_ + "/" + SegmentFileName(old, true));
    RemoveIfExists(ns_dir_ + "/" + SegmentFileName(old, false));
    RemoveIfExists(ns_dir_ + "/" + ModelFileName(old));
    RemoveIfExists(ns_dir_ + "/" + ReviewSegmentFileName(old));
    RemoveIfExists(ns_dir_ + "/" + WalFileName(old));
  }

  LEARNRISK_RETURN_NOT_OK(OpenWal(ns_dir_ + "/" + m.wal_file));
  checkpoint_id_ = id;
  wal_entries_ = 0;
  if (metrics_.checkpoints != nullptr) metrics_.checkpoints->Add(1);
  if (metrics_.checkpoint_bytes != nullptr) {
    metrics_.checkpoint_bytes->Add(segment_bytes);
  }
  if (metrics_.checkpoint_records != nullptr) {
    metrics_.checkpoint_records->Add(m.left_records + m.right_records);
  }
  return Status::OK();
}

Result<std::unique_ptr<NamespaceLog>> NamespaceLog::Recover(
    const DurabilityOptions& options, const std::string& ns,
    const Schema& schema, RecoveredNamespace* recovered) {
  const std::string ns_dir = options.dir + "/" + ns;
  const std::string manifest_path = ns_dir + "/" + kManifestName;
  if (!std::filesystem::exists(manifest_path)) {
    return Status::NotFound("no durable state for namespace '" + ns +
                            "' under '" + options.dir + "'");
  }
  Result<std::string> manifest_text = ReadFile(manifest_path);
  if (!manifest_text.ok()) return manifest_text.status();
  Result<Manifest> parsed = ParseManifest(*manifest_text, manifest_path);
  if (!parsed.ok()) return parsed.status();
  const Manifest& m = *parsed;

  if (m.schema_fingerprint != SchemaFingerprint(schema)) {
    return Status::InvalidArgument(
        "manifest schema fingerprint does not match the caller's schema for "
        "namespace '" + ns + "' (expected '" + SchemaFingerprint(schema) +
        "', manifest has '" + m.schema_fingerprint + "')");
  }

  RecoveredNamespace out;
  out.dedup = m.dedup;
  out.checkpoint_id = m.checkpoint_id;
  out.model_version = m.model_version;
  if (m.model_version > 0) {
    out.model_path = ns_dir + "/" + m.model_file;
    if (!std::filesystem::exists(out.model_path)) {
      return Status::IOError("manifest references missing model file '" +
                             out.model_path + "'");
    }
  }
  out.left = Table(schema);
  out.right = Table(schema);
  LEARNRISK_RETURN_NOT_OK(
      LoadSegmentFile(ns_dir + "/" + m.left_file, m.left_records, &out.left));
  if (!m.dedup) {
    LEARNRISK_RETURN_NOT_OK(LoadSegmentFile(ns_dir + "/" + m.right_file,
                                            m.right_records, &out.right));
  }
  out.checkpoint_records = m.left_records + (m.dedup ? 0 : m.right_records);
  if (!m.review_file.empty()) {
    LEARNRISK_RETURN_NOT_OK(LoadReviewSegment(
        ns_dir + "/" + m.review_file, m.review_queued, m.review_outstanding,
        m.review_labeled, &out.review_queued, &out.review_outstanding,
        &out.review_labeled));
  }

  // WAL tail replay. The first frame that is torn (not enough bytes), has an
  // implausible length, or fails its checksum ends the replay: everything
  // from that offset on is discarded and truncated away, so the next append
  // extends a fully valid prefix.
  const std::string wal_path = ns_dir + "/" + m.wal_file;
  if (!std::filesystem::exists(wal_path)) {
    return Status::IOError("manifest references missing WAL file '" +
                           wal_path + "'");
  }
  Result<std::string> wal_data = ReadFile(wal_path);
  if (!wal_data.ok()) return wal_data.status();
  const std::string& bytes = *wal_data;
  const size_t header_len = std::strlen(kWalHeader);
  if (bytes.size() < header_len ||
      bytes.compare(0, header_len, kWalHeader) != 0) {
    return Status::IOError("corrupt WAL '" + wal_path + "': bad header");
  }
  size_t valid_end = header_len;
  const char* base = bytes.data();
  const char* end = base + bytes.size();
  const char* p = base + header_len;
  while (p < end) {
    const char* frame_start = p;
    uint32_t payload_size = 0;
    uint32_t stored_crc = 0;
    if (!GetU32(&p, end, &payload_size) || !GetU32(&p, end, &stored_crc) ||
        payload_size > kMaxFramePayload ||
        static_cast<size_t>(end - p) < payload_size) {
      break;  // torn tail
    }
    if (Crc32(p, payload_size) != stored_crc) break;  // corrupt tail
    const char* payload_end = p + payload_size;
    if (p == payload_end) break;  // empty payload: corrupt
    const char kind_byte = *p++;
    if (kind_byte == kPayloadReviewOffer || kind_byte == kPayloadReviewDrain ||
        kind_byte == kPayloadReviewLabel) {
      ReviewWalEvent event;
      if (!DecodeReviewEvent(kind_byte, &p, payload_end, &event) ||
          p != payload_end) {
        break;  // checksummed but undecodable: treat as tail corruption
      }
      out.review_events.push_back(std::move(event));
    } else {
      Record record;
      int64_t entity_id = -1;
      if (!DecodeRecord(&p, payload_end, &record, &entity_id) ||
          p != payload_end) {
        break;  // checksummed but undecodable: treat as tail corruption
      }
      if (record.values.size() != schema.num_attributes()) {
        return Status::InvalidArgument(
            "WAL '" + wal_path + "' entry " +
            std::to_string(out.wal_entries_replayed) +
            " width does not match the namespace schema");
      }
      Table* target =
          (m.dedup || kind_byte == kPayloadRecordLeft) ? &out.left : &out.right;
      LEARNRISK_RETURN_NOT_OK(target->Append(std::move(record), entity_id));
    }
    ++out.wal_entries_replayed;
    valid_end = static_cast<size_t>(p - base);
    (void)frame_start;
  }
  out.wal_bytes_discarded = bytes.size() - valid_end;
  if (out.wal_bytes_discarded > 0) {
    std::error_code ec;
    std::filesystem::resize_file(wal_path, valid_end, ec);
    if (ec) {
      return Status::IOError("cannot truncate torn WAL tail of '" + wal_path +
                             "': " + ec.message());
    }
  }

  auto log = std::unique_ptr<NamespaceLog>(new NamespaceLog());
  log->ns_dir_ = ns_dir;
  log->hook_ = options.crash_hook;
  log->fsync_appends_ = options.fsync_appends;
  log->checkpoint_id_ = m.checkpoint_id;
  log->wal_entries_ = out.wal_entries_replayed;
  LEARNRISK_RETURN_NOT_OK(log->OpenWal(wal_path));
  // Clean up unreferenced debris: a crash-interrupted later checkpoint
  // (files of id+1, torn MANIFEST.tmp) and a superseded earlier one whose
  // post-swap cleanup never ran (files of id-1). Neither is referenced by
  // the committed manifest.
  RemoveIfExists(ns_dir + "/" + kManifestTmpName);
  for (const uint64_t other :
       {m.checkpoint_id + 1, m.checkpoint_id - 1}) {
    if (other == 0 || other == m.checkpoint_id) continue;
    RemoveIfExists(ns_dir + "/" + SegmentFileName(other, true));
    RemoveIfExists(ns_dir + "/" + SegmentFileName(other, false));
    RemoveIfExists(ns_dir + "/" + ModelFileName(other));
    RemoveIfExists(ns_dir + "/" + ReviewSegmentFileName(other));
    RemoveIfExists(ns_dir + "/" + WalFileName(other));
  }
  *recovered = std::move(out);
  return log;
}

}  // namespace learnrisk
