// Copyright 2026 The LearnRisk Authors
// Cross-shard candidate generation for sharded gateway namespaces.
//
// A sharded namespace hashes records across S independent shards (shard of a
// global id = id % S, local id = id / S; a record at local index l of shard
// k has global id l * S + k). Each shard owns its own SideStore segments and
// BlockingIndex over *local* ids. The functions here reproduce the global
// (unsharded) blocker exactly from those per-shard indexes: postings are
// unioned across shards, the document-frequency and block-size caps are
// applied at the *global* counts, local ids are translated back to global
// ids, and pairs are emitted through the same ordered-set construction the
// unsharded BlockingIndex uses — so the output is bit-identical to an
// unsharded index over the same records at any S (enforced by
// tests/gateway_shard_test.cc).
//
// ShardedSideView is the featurization counterpart: a zero-copy view
// presenting S per-shard SideStores as one global-id-addressed store, so
// FeaturePipeline::RunPrepared can evaluate merged candidate pairs without
// materializing anything.

#ifndef LEARNRISK_GATEWAY_SHARD_MERGE_H_
#define LEARNRISK_GATEWAY_SHARD_MERGE_H_

#include <cstdint>
#include <vector>

#include "data/table.h"
#include "data/workload.h"
#include "gateway/blocking_index.h"
#include "gateway/namespace_segments.h"

namespace learnrisk {

/// \brief Shard index of a global record id under S shards.
inline size_t ShardOfId(size_t global_id, size_t num_shards) {
  return global_id % num_shards;
}
/// \brief Local (per-shard) index of a global record id under S shards.
inline size_t LocalOfId(size_t global_id, size_t num_shards) {
  return global_id / num_shards;
}
/// \brief Global record id of local index `local` on shard `shard`.
inline size_t GlobalId(size_t local, size_t shard, size_t num_shards) {
  return local * num_shards + shard;
}

/// \brief A read-only view over one namespace side's per-shard SideStores,
/// addressed by global record ids. The stores (and the snapshots owning
/// them) must outlive the view — the gateway pins its per-request shard
/// snapshots for exactly this reason.
class ShardedSideView {
 public:
  ShardedSideView() = default;
  explicit ShardedSideView(std::vector<const SideStore*> stores)
      : stores_(std::move(stores)) {
    for (const SideStore* store : stores_) size_ += store->size();
  }

  /// \brief Total records across shards. Note that global ids are only
  /// guaranteed contiguous in [0, size()) when the shards are balanced
  /// (|shard sizes| differ by at most 1); bounds checks go through
  /// InRange, which is exact per shard.
  size_t size() const { return size_; }
  size_t shard_count() const { return stores_.size(); }

  /// \brief True iff `global_id` resolves to an existing record of its
  /// shard (exact even when shard sizes are momentarily unbalanced).
  bool InRange(size_t global_id) const {
    return global_id / stores_.size() <
           stores_[global_id % stores_.size()]->size();
  }

  const PreparedRecord& prepared(size_t global_id) const {
    return stores_[global_id % stores_.size()]->prepared(global_id /
                                                         stores_.size());
  }
  const Record& record(size_t global_id) const {
    return stores_[global_id % stores_.size()]->record(global_id /
                                                       stores_.size());
  }
  int64_t entity_id(size_t global_id) const {
    return stores_[global_id % stores_.size()]->entity_id(global_id /
                                                          stores_.size());
  }

  /// \brief Direct row pointer when the view degenerates to one contiguous
  /// store (S == 1); nullptr otherwise — mirrors SideStore.
  const PreparedRecord* contiguous_prepared() const {
    return stores_.size() == 1 ? stores_[0]->contiguous_prepared() : nullptr;
  }

 private:
  std::vector<const SideStore*> stores_;
  size_t size_ = 0;
};

/// \brief Every candidate pair implied by the union of the per-shard
/// postings, bit-identical (same pairs, same deterministic ordering, same
/// equivalence flags) to BlockingIndex::AllCandidates over an unsharded
/// index holding the same records under the same global ids. All shards
/// must share one BlockingConfig and dedup flag (they come from one
/// namespace registration). `merge_ms`, when non-null, receives the wall
/// time of the final merge phase (global ordering + equivalence tagging) —
/// the gateway's `shard_merge` stage span.
std::vector<RecordPair> MergedAllCandidates(
    const std::vector<const BlockingIndex*>& shards,
    double* merge_ms = nullptr);

/// \brief Blocking candidates of a raw probe against the target side of a
/// sharded namespace, ascending by global id — bit-identical to
/// BlockingIndex::Candidates on the equivalent unsharded index. `merge_ms`
/// as in MergedAllCandidates.
std::vector<size_t> MergedCandidates(
    const std::vector<const BlockingIndex*>& shards, const Record& probe,
    BlockingSide target, double* merge_ms = nullptr);

}  // namespace learnrisk

#endif  // LEARNRISK_GATEWAY_SHARD_MERGE_H_
