// Copyright 2026 The LearnRisk Authors
// Append-only segmented record storage for gateway namespaces. A SideStore
// holds one side's records, their ground-truth entity ids, and their
// PreparedRecord featurization caches in a list of immutable, shared
// segments: registration builds one base segment from the source table, and
// each online append adds a single-record tail segment. Because segments are
// never mutated after publication, copying a SideStore is a handful of
// shared_ptr copies — exactly what the gateway's RCU writer needs to derive
// the next namespace snapshot without ever touching the one concurrent
// readers are using (see docs/CONCURRENCY.md).
//
// Each segment owns its Records, and its PreparedRecords borrow their raw
// attribute strings from those Records (PreparedValue::raw is a view), so a
// record's string data exists exactly once per segment. Segments are never
// merged: merging would relocate the Records and dangle the views. Random
// access resolves the owning segment by binary search over the base-offset
// table (one comparison when a store has a single segment, O(log segments)
// after online appends).

#ifndef LEARNRISK_GATEWAY_NAMESPACE_SEGMENTS_H_
#define LEARNRISK_GATEWAY_NAMESPACE_SEGMENTS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/table.h"
#include "metrics/prepared_record.h"

namespace learnrisk {

class MetricSuite;

/// \brief One immutable run of a namespace side: records, entity ids, and
/// prepared featurization caches, index-aligned. The prepared entries'
/// string views point into `records`, which never moves after construction.
struct SideSegment {
  std::vector<Record> records;
  std::vector<int64_t> entity_ids;
  std::vector<PreparedRecord> prepared;

  SideSegment() = default;
  // Copying would dangle `prepared`'s views into `records`; segments are
  // built once and shared immutably behind shared_ptr<const SideSegment>.
  SideSegment(const SideSegment&) = delete;
  SideSegment& operator=(const SideSegment&) = delete;
};

/// \brief An append-only, cheaply copyable view over one side's segments.
///
/// Immutable through the const interface; WithAppended derives a new store
/// sharing every existing segment plus a fresh single-record tail. Safe to
/// read from any number of threads while a writer builds successor stores
/// from copies.
class SideStore {
 public:
  SideStore() = default;

  /// \brief One base segment holding a copy of every record of `table`,
  /// prepared under `suite` (parallel). The store owns its copies — the
  /// caller's table can die afterwards.
  static SideStore Build(const Table& table, const MetricSuite& suite);

  /// \brief A new store: this store's segments plus a one-record tail
  /// segment owning `record` (prepared under `suite`). The receiver is not
  /// modified.
  SideStore WithAppended(Record record, int64_t entity_id,
                         const MetricSuite& suite) const;

  size_t size() const { return size_; }
  size_t segment_count() const { return segments_.size(); }

  /// \brief Direct pointer to the prepared rows when the store is a single
  /// contiguous segment (the common case: bulk registration with few or no
  /// online appends); nullptr otherwise. The featurize hot loop uses this
  /// to skip the per-access segment resolution.
  const PreparedRecord* contiguous_prepared() const {
    return segments_.size() == 1 ? segments_[0]->prepared.data() : nullptr;
  }

  const Record& record(size_t i) const {
    const Location loc = Locate(i);
    return segments_[loc.segment]->records[loc.offset];
  }
  const PreparedRecord& prepared(size_t i) const {
    const Location loc = Locate(i);
    return segments_[loc.segment]->prepared[loc.offset];
  }
  int64_t entity_id(size_t i) const {
    const Location loc = Locate(i);
    return segments_[loc.segment]->entity_ids[loc.offset];
  }

  /// \brief Materializes the store back into a Table (for tests and
  /// reference rebuilds; copies every record).
  Table Materialize(const Schema& schema) const;

 private:
  struct Location {
    size_t segment;
    size_t offset;
  };
  Location Locate(size_t i) const;

  std::vector<std::shared_ptr<const SideSegment>> segments_;
  std::vector<size_t> bases_;  ///< bases_[k] = global index of segment k's row 0
  size_t size_ = 0;
};

}  // namespace learnrisk

#endif  // LEARNRISK_GATEWAY_NAMESPACE_SEGMENTS_H_
