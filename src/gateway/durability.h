// Copyright 2026 The LearnRisk Authors
// Per-namespace durability for the request gateway: a write-ahead record log
// plus checkpoint/recover of the full namespace state (records, entity ids,
// and the served model version). The full protocol — log framing, checkpoint
// file layout, the atomic manifest swap, recovery invariants, and the crash
// matrix — is documented in docs/DURABILITY.md.
//
// Shape of the on-disk state, per namespace (`<dir>/<ns>/`):
//   MANIFEST             committed state: checkpoint id, segment files +
//                        record counts, schema fingerprint, model version,
//                        active WAL file; body protected by a CRC32 trailer
//                        and replaced only by an atomic rename
//   ckpt_<id>_left.seg   immutable checkpoint segments (records + entity
//   ckpt_<id>_right.seg  ids, length-prefixed, whole-payload CRC32)
//   model_<id>.model     the served risk model at checkpoint time (model_io)
//   wal_<id>.log         CRC32-framed record appends since checkpoint <id>
//
// AddRecord durability: the gateway appends to the WAL *before* publishing
// the successor snapshot, so every acknowledged record is on disk. Recovery
// loads the manifest's checkpoint and replays the WAL tail; a torn or
// corrupt tail entry (partial frame, or a frame whose payload fails its
// checksum) ends the replay and is truncated away — entries behind it were
// never acknowledged with a durable prefix, so dropping them preserves the
// prefix discipline.
//
// Crash injection: every IO sequence point calls the options' CrashHook with
// a named crash point ("wal:mid_append", "checkpoint:mid_manifest", ...).
// When the hook returns true the log abandons the operation exactly there —
// leaving the same partial on-disk bytes a process kill would — and marks
// itself dead (every later call fails), so tests can simulate a crash and
// then "restart" by recovering from the directory
// (tests/gateway_crash_recovery_test.cc).

#ifndef LEARNRISK_GATEWAY_DURABILITY_H_
#define LEARNRISK_GATEWAY_DURABILITY_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/table.h"
#include "gateway/blocking_index.h"
#include "obs/metrics.h"
#include "review/review_queue.h"

namespace learnrisk {

/// \brief Telemetry hooks for one namespace's durability machinery (all
/// optional; see docs/OBSERVABILITY.md). The log records IO volume here —
/// frames, bytes, fsyncs — while latency is timed by the gateway around its
/// calls, so the histogram and StageTiming agree on stage boundaries.
/// Instruments are owned by a MetricRegistry; null pointers disable
/// recording. Set before the first Append / WriteCheckpoint.
struct DurabilityMetrics {
  ShardedCounter* wal_appends = nullptr;        ///< acknowledged WAL frames
  ShardedCounter* wal_append_bytes = nullptr;   ///< WAL frame bytes written
  ShardedCounter* wal_fsyncs = nullptr;         ///< fsyncs on the active WAL
  ShardedCounter* checkpoints = nullptr;        ///< committed checkpoints
  ShardedCounter* checkpoint_bytes = nullptr;   ///< segment bytes written
  ShardedCounter* checkpoint_records = nullptr; ///< records across segments
};

/// \brief Test hook invoked at named IO sequence points ("wal:mid_append",
/// "manifest:before_swap", ...). Returning true simulates a process crash at
/// that point: the operation is abandoned with whatever partial bytes are
/// already on disk and the log goes dead. Null (or always-false) in
/// production.
using CrashHook = std::function<bool(const std::string& point)>;

/// \brief Gateway durability configuration.
struct DurabilityOptions {
  /// Root directory for durable namespace state (one subdirectory per
  /// namespace, created on demand). Empty = durability off: namespaces are
  /// in-memory only and a restart loses online appends.
  std::string dir;
  /// When > 0, the gateway checkpoints a namespace automatically once its
  /// WAL holds this many entries (bounding both WAL growth and recovery
  /// replay time). 0 = manual checkpoints only (Gateway::Checkpoint).
  size_t wal_checkpoint_threshold = 0;
  /// When true, every WAL append fsyncs before being acknowledged (survives
  /// power loss, not just process death). Default off: appends flush to the
  /// OS page cache, which survives a process crash — the failure model the
  /// crash tests exercise — at a fraction of the cost.
  bool fsync_appends = false;
  /// Crash-injection hook; see CrashHook. Null in production.
  CrashHook crash_hook;
};

/// \brief CRC-32 (IEEE 802.3, the zlib polynomial) of a byte range. Exposed
/// so tests can forge and corrupt frames deliberately.
uint32_t Crc32(const void* data, size_t size);

/// \brief One logged record append, exactly the arguments of
/// Gateway::AddRecord.
struct WalEntry {
  BlockingSide side = BlockingSide::kLeft;
  int64_t entity_id = -1;
  Record record;
};

/// \brief One logged review-queue mutation. Offers carry the full item;
/// drains and labels carry only the pair key (plus the truth bit for
/// labels). All three are logged — drains too, because a drain changes the
/// queue's capacity/displacement decisions for every later offer, so replay
/// must reproduce it to reconstruct the same queue (docs/REVIEW.md).
struct ReviewWalEvent {
  enum class Kind { kOffer, kDrain, kLabel };
  Kind kind = Kind::kOffer;
  ReviewItem item;    ///< full payload for offers; key-only for drain/label
  uint8_t truth = 0;  ///< labels only
};

/// \brief Everything recovery reconstructs from a namespace's durable state:
/// the full record state (checkpoint plus replayed WAL tail) and the
/// manifest metadata needed to resume serving.
struct RecoveredNamespace {
  Table left;
  Table right;  ///< unused when dedup
  bool dedup = false;
  uint64_t checkpoint_id = 0;
  /// Version of the model the manifest committed (0 = none was published at
  /// checkpoint time); `model_path` holds its model_io file when > 0.
  uint64_t model_version = 0;
  std::string model_path;
  size_t checkpoint_records = 0;     ///< records loaded from checkpoint segments
  size_t wal_entries_replayed = 0;   ///< valid WAL tail entries applied
  size_t wal_bytes_discarded = 0;    ///< torn/corrupt tail bytes truncated
  /// Review-queue state from the checkpoint's review segment (empty when the
  /// manifest has none) plus the review events replayed from the WAL tail,
  /// in log order. Resident and outstanding items are kept separate so the
  /// gateway can seed a ReviewQueue with the exact live occupancy before
  /// replaying the events; queued-but-unlabeled pairs and every acked label
  /// survive a restart.
  std::vector<ReviewItem> review_queued;
  std::vector<ReviewItem> review_outstanding;
  std::vector<LabeledReview> review_labeled;
  std::vector<ReviewWalEvent> review_events;
};

/// \brief The durable write-ahead log + checkpoint state of one namespace.
///
/// Not internally synchronized: the gateway serializes every call on the
/// namespace's writer mutex (readers never touch the log). Once a simulated
/// crash fires, the object is dead — every later call fails with IOError —
/// mirroring a killed process whose state must be recovered from disk.
class NamespaceLog {
 public:
  /// \brief Writes the model file of a checkpoint (e.g. a bound
  /// ServingEngine snapshot save). Invoked with the target path.
  using ModelSaver = std::function<Status(const std::string& path)>;

  ~NamespaceLog();
  NamespaceLog(const NamespaceLog&) = delete;
  NamespaceLog& operator=(const NamespaceLog&) = delete;

  /// \brief Creates fresh durable state for a namespace (directory created,
  /// stray files from an interrupted earlier registration removed). Fails
  /// with FailedPrecondition if a committed manifest already exists — that
  /// state belongs to a previous incarnation and must be recovered, not
  /// overwritten. The caller must WriteCheckpoint before the first Append.
  static Result<std::unique_ptr<NamespaceLog>> Create(
      const DurabilityOptions& options, const std::string& ns);

  /// \brief Recovers a namespace's durable state: validates and parses the
  /// manifest, loads the checkpoint segments, replays the WAL tail
  /// (truncating a torn/corrupt tail), and returns a log positioned to
  /// continue appending. `schema` must match the manifest's fingerprint.
  /// NotFound when no committed manifest exists; IOError / InvalidArgument
  /// with a diagnostic message on missing or corrupt files.
  static Result<std::unique_ptr<NamespaceLog>> Recover(
      const DurabilityOptions& options, const std::string& ns,
      const Schema& schema, RecoveredNamespace* recovered);

  /// \brief True when a committed manifest exists for the namespace.
  static bool Exists(const std::string& dir, const std::string& ns);

  /// \brief Appends one record entry to the WAL (length-prefixed, CRC32
  /// checksummed) and flushes it. Crash points: "wal:before_append",
  /// "wal:mid_append" (torn frame on disk), "wal:after_append" (durable but
  /// unacknowledged).
  Status Append(const WalEntry& entry);

  /// \brief Appends one review-queue event frame (same framing and crash
  /// points as Append). The gateway logs the event *before* applying it to
  /// the in-memory queue, so every acked review mutation is on disk.
  Status AppendReview(const ReviewWalEvent& event);

  /// \brief Checkpoints the full record state: writes immutable segment
  /// files and the model file for checkpoint id N+1, starts a fresh WAL,
  /// and commits everything with one atomic manifest rename; old files are
  /// deleted only after the swap. A crash at any point leaves either the
  /// old or the new checkpoint fully committed. `right` is null for dedup
  /// namespaces; `save_model` null when no model is published. `review`,
  /// when non-null, persists the review queue (unlabeled items + labels)
  /// into a review segment the manifest references. Crash points:
  /// "checkpoint:mid_segment", "checkpoint:mid_manifest",
  /// "manifest:before_swap", "manifest:after_swap".
  Status WriteCheckpoint(const Table& left, const Table* right,
                         uint64_t model_version, const ModelSaver& save_model,
                         const ReviewQueue::CheckpointState* review = nullptr);

  /// \brief Entries appended to the active WAL since the last checkpoint
  /// (includes replayed entries after Recover).
  size_t wal_entries_since_checkpoint() const { return wal_entries_; }

  uint64_t checkpoint_id() const { return checkpoint_id_; }

  /// \brief True once a simulated crash killed this log.
  bool dead() const { return dead_; }

  /// \brief Installs telemetry hooks (copied by value). The gateway wires
  /// this right after Create / Recover, before the log sees traffic.
  void set_metrics(const DurabilityMetrics& metrics) { metrics_ = metrics; }

 private:
  NamespaceLog() = default;

  /// \brief Fires the crash hook for `point`; on crash, closes the WAL
  /// stream, marks the log dead, and returns IOError.
  Status CrashPoint(const std::string& point);
  /// \brief Frames, checksums, and appends one payload to the active WAL in
  /// two flushed halves (shared by Append / AppendReview).
  Status AppendFrame(const std::string& payload);
  /// \brief Opens `path` for appending as the active WAL stream.
  Status OpenWal(const std::string& path);
  void CloseWal();

  std::string ns_dir_;
  CrashHook hook_;
  bool fsync_appends_ = false;
  std::FILE* wal_ = nullptr;
  std::string wal_path_;
  uint64_t checkpoint_id_ = 0;  ///< 0 = created but nothing committed yet
  size_t wal_entries_ = 0;
  bool dead_ = false;
  /// Null pointers = no instrumentation; written once before first use.
  DurabilityMetrics metrics_;
};

}  // namespace learnrisk

#endif  // LEARNRISK_GATEWAY_DURABILITY_H_
