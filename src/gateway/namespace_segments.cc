// Copyright 2026 The LearnRisk Authors

#include "gateway/namespace_segments.h"

#include <algorithm>
#include <utility>

#include "common/parallel.h"
#include "metrics/metric_suite.h"

namespace learnrisk {

SideStore SideStore::Build(const Table& table, const MetricSuite& suite) {
  SideStore store;
  if (table.num_records() == 0) return store;
  auto segment = std::make_shared<SideSegment>();
  // Copy the rows first and never resize afterwards: the prepared entries
  // below hold views into these strings.
  segment->records = table.records();
  segment->entity_ids.reserve(table.num_records());
  for (size_t i = 0; i < table.num_records(); ++i) {
    segment->entity_ids.push_back(table.entity_id(i));
  }
  segment->prepared.resize(segment->records.size());
  ParallelFor(segment->records.size(), [&](size_t i) {
    segment->prepared[i] = suite.PrepareRecord(segment->records[i]);
  });
  store.size_ = segment->records.size();
  store.bases_.push_back(0);
  store.segments_.push_back(std::move(segment));
  return store;
}

SideStore SideStore::WithAppended(Record record, int64_t entity_id,
                                  const MetricSuite& suite) const {
  SideStore next = *this;  // shares every existing segment
  auto tail = std::make_shared<SideSegment>();
  tail->records.push_back(std::move(record));
  tail->entity_ids.push_back(entity_id);
  tail->prepared.push_back(suite.PrepareRecord(tail->records.front()));
  next.bases_.push_back(next.size_);
  next.segments_.push_back(std::move(tail));
  ++next.size_;
  return next;
}

SideStore::Location SideStore::Locate(size_t i) const {
  if (segments_.size() == 1) return {0, i};
  // Last segment whose base is <= i.
  const size_t k = static_cast<size_t>(
      std::upper_bound(bases_.begin(), bases_.end(), i) - bases_.begin() - 1);
  return {k, i - bases_[k]};
}

Table SideStore::Materialize(const Schema& schema) const {
  Table table(schema);
  for (size_t i = 0; i < size_; ++i) {
    // Append only fails on width mismatch, which Build/WithAppended callers
    // already enforce against the namespace schema.
    const Status appended = table.Append(record(i), entity_id(i));
    (void)appended;
  }
  return table;
}

}  // namespace learnrisk
