// Copyright 2026 The LearnRisk Authors
// Incremental, queryable token blocking — the candidate-generation layer of
// the request gateway. Holds per-side token postings in append-only immutable
// segments so records can be added online one at a time and probed for
// blocking candidates without rebuilding anything; materializing every
// candidate pair from the postings reproduces the offline TokenBlocking
// batch blocker exactly (same tokens via BlockingKeyTokens, same
// document-frequency and block-purging caps, same deterministic pair order),
// and probing a record reproduces exactly the batch pairs that record would
// participate in if it were appended.

#ifndef LEARNRISK_GATEWAY_BLOCKING_INDEX_H_
#define LEARNRISK_GATEWAY_BLOCKING_INDEX_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "data/blocking.h"
#include "data/table.h"
#include "data/workload.h"

namespace learnrisk {

/// \brief Which side of a two-table workload a record belongs to. Dedup
/// (single-table) indexes fold both sides onto kLeft.
enum class BlockingSide { kLeft, kRight };

/// \brief The opposite side (kLeft <-> kRight).
inline BlockingSide OppositeSide(BlockingSide side) {
  return side == BlockingSide::kLeft ? BlockingSide::kRight
                                     : BlockingSide::kLeft;
}

/// \brief An in-memory inverted index over blocking tokens, maintained
/// incrementally as a list of append-only immutable posting segments.
///
/// The index is the online counterpart of TokenBlocking: AddRecord appends a
/// record's postings, Candidates probes a raw (possibly unseen) record for
/// blocking partners, and AllCandidates materializes the full candidate set.
/// The df / block-size caps are evaluated lazily against the *current*
/// posting sizes, so AllCandidates after N AddRecord calls is identical to
/// batch-blocking the same N records.
///
/// Storage is segment-structured for snapshot concurrency (see
/// docs/CONCURRENCY.md): each side is a vector of shared, immutable
/// `Segment`s (token -> ascending global record ids, plus the covered
/// records' entity ids). AddRecord appends a single-record tail segment and
/// then merges tail segments binary-counter style (merge while the tail is
/// at least as large as its predecessor), which keeps the per-side segment
/// count logarithmic and the amortized append cost O(tokens * log n). A
/// merge always builds a *new* segment — published segments are never
/// mutated — so copying a BlockingIndex is cheap (shared_ptr vector copies)
/// and a copy taken by an RCU writer never invalidates concurrent readers
/// of the original. The BlockingIndex object itself is not internally
/// synchronized: one writer mutates its own copy while readers use theirs.
class BlockingIndex {
 public:
  BlockingIndex() = default;

  /// \brief An empty index. `dedup` selects single-table semantics: both
  /// sides share one posting list and AllCandidates emits (i, j) with i < j.
  BlockingIndex(BlockingConfig config, bool dedup)
      : config_(config), dedup_(dedup) {}

  /// \brief Index over all records of two tables (pass the same table object
  /// twice for dedup), built as one base segment per side. AllCandidates()
  /// of the result equals TokenBlocking(left, right, config) exactly.
  static Result<BlockingIndex> Build(const Table& left, const Table& right,
                                     const BlockingConfig& config);

  const BlockingConfig& config() const { return config_; }
  bool dedup() const { return dedup_; }

  /// \brief Records indexed on one side (dedup: both sides report the single
  /// table's count).
  size_t num_records(BlockingSide side) const {
    return side_of(side).num_records;
  }

  /// \brief Posting segments currently backing one side (observability; 1
  /// after Build, grows and shrinks with AddRecord's tail merges).
  size_t segment_count(BlockingSide side) const {
    return side_of(side).segments.size();
  }

  /// \brief Appends one record's postings as a new tail segment (merging
  /// tails as needed). `entity_id` is the generator ground truth used to
  /// flag AllCandidates pairs as equivalent; pass -1 when unknown
  /// (production traffic), which marks every pair non-match. In dedup mode
  /// the side is ignored (single table). Fails if the key attribute is out
  /// of range for the record.
  Status AddRecord(BlockingSide side, const Record& record,
                   int64_t entity_id = -1);

  /// \brief Blocking candidates of a raw probe record on the target side,
  /// ascending — *exactly* the partners the probe would get from batch
  /// TokenBlocking if it were appended as the next record of the opposite
  /// (probe) side: per-token document-frequency caps are evaluated on both
  /// sides, with the probe side's counts and cap taken at its hypothetical
  /// new size (current records + the probe itself). Dedup indexes probe the
  /// single table regardless of `target`. Parity with the batch blocker is
  /// enforced by tests/blocking_index_test.cc.
  std::vector<size_t> Candidates(const Record& probe,
                                 BlockingSide target) const;

  /// \brief Every candidate pair implied by the current postings, with the
  /// same caps, dedup semantics, and deterministic ordering as
  /// TokenBlocking over the same records.
  std::vector<RecordPair> AllCandidates() const;

  // --- Cross-shard merge support (src/gateway/shard_merge.cc) ---------------
  // Sharded namespaces keep one BlockingIndex per shard (local record ids)
  // and reproduce the global blocker by unioning postings across shards and
  // applying the df / block-size caps at the *global* counts. These
  // accessors expose exactly what that merge needs; they do not change the
  // index's own cap semantics.

  /// \brief Calls `fn(token)` exactly once per distinct token indexed on one
  /// side (the per-segment `prior` sets dedup across segments). The
  /// reference stays valid while this index (or a copy sharing its
  /// segments) is alive.
  void ForEachToken(BlockingSide side,
                    const std::function<void(const std::string&)>& fn) const;

  /// \brief Total posting count of `token` on one side (0 when absent).
  size_t TokenCount(BlockingSide side, const std::string& token) const;

  /// \brief Appends every posting id of `token` on one side, ascending.
  void AppendTokenIds(BlockingSide side, const std::string& token,
                      std::vector<size_t>* out) const;

  /// \brief Entity id of one record of a side (-1 = unknown).
  int64_t EntityAt(BlockingSide side, size_t id) const;

 private:
  using Postings = std::unordered_map<std::string, std::vector<size_t>>;

  /// \brief One immutable run of indexed records: their token postings
  /// (global record ids, ascending) and entity ids, covering global indices
  /// [base, base + entities.size()).
  struct Segment {
    size_t base = 0;
    Postings postings;
    /// Of this segment's postings tokens, the ones that also appear in some
    /// earlier (lower-base) segment of the same side. Computed once when the
    /// segment is created (tail append or merge) and immutable like the
    /// rest, so AllCandidates decides "is this the token's first segment?"
    /// with one lookup instead of re-walking every earlier segment's
    /// postings per token.
    std::unordered_set<std::string> prior;
    std::vector<int64_t> entities;
    size_t num_records() const { return entities.size(); }
  };

  /// \brief One side's segment list. Segments are immutable and shared
  /// across index copies; only the vector itself is per-copy.
  struct Side {
    std::vector<std::shared_ptr<const Segment>> segments;
    size_t num_records = 0;
  };

  const Side& side_of(BlockingSide side) const {
    return !dedup_ && side == BlockingSide::kRight ? right_ : left_;
  }
  Side& side_of(BlockingSide side) {
    return !dedup_ && side == BlockingSide::kRight ? right_ : left_;
  }

  /// \brief Total posting-list size of `token` across a side's segments.
  static size_t CountToken(const Side& side, const std::string& token);
  /// \brief Appends all of a side's posting ids for `token` (ascending,
  /// segments are base-ordered) starting from segment `first`.
  static void GatherIds(const Side& side, const std::string& token,
                        size_t first, std::vector<size_t>* out);
  /// \brief Entity id of one global record index (binary search over the
  /// side's base-ordered segments).
  static int64_t EntityOf(const Side& side, size_t id);

  /// \brief df cap at a record count (TokenBlocking's
  /// max(max_token_df * records, 1)).
  size_t DfCapAt(size_t records) const;

  BlockingConfig config_;
  bool dedup_ = false;
  Side left_;
  Side right_;
};

}  // namespace learnrisk

#endif  // LEARNRISK_GATEWAY_BLOCKING_INDEX_H_
