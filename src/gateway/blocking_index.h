// Copyright 2026 The LearnRisk Authors
// Incremental, queryable token blocking — the candidate-generation layer of
// the request gateway. Holds per-side token postings in memory so records can
// be added online one at a time and probed for blocking candidates without
// rebuilding anything; materializing every candidate pair from the postings
// reproduces the offline TokenBlocking batch blocker exactly (same tokens via
// BlockingKeyTokens, same document-frequency and block-purging caps, same
// deterministic pair order).

#ifndef LEARNRISK_GATEWAY_BLOCKING_INDEX_H_
#define LEARNRISK_GATEWAY_BLOCKING_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "data/blocking.h"
#include "data/table.h"
#include "data/workload.h"

namespace learnrisk {

/// \brief Which side of a two-table workload a record belongs to. Dedup
/// (single-table) indexes fold both sides onto kLeft.
enum class BlockingSide { kLeft, kRight };

/// \brief An in-memory inverted index over blocking tokens, maintained
/// incrementally.
///
/// The index is the online counterpart of TokenBlocking: AddRecord appends a
/// record's postings, Candidates probes a raw (possibly unseen) record for
/// blocking partners, and AllCandidates materializes the full candidate set.
/// The df / block-size caps are evaluated lazily against the *current*
/// posting sizes, so AllCandidates after N AddRecord calls is identical to
/// batch-blocking the same N records. Not internally synchronized — the
/// gateway guards each namespace's index with its table lock.
class BlockingIndex {
 public:
  BlockingIndex() = default;

  /// \brief An empty index. `dedup` selects single-table semantics: both
  /// sides share one posting list and AllCandidates emits (i, j) with i < j.
  BlockingIndex(BlockingConfig config, bool dedup)
      : config_(config), dedup_(dedup) {}

  /// \brief Index over all records of two tables (pass the same table object
  /// twice for dedup). AllCandidates() of the result equals
  /// TokenBlocking(left, right, config) exactly.
  static Result<BlockingIndex> Build(const Table& left, const Table& right,
                                     const BlockingConfig& config);

  const BlockingConfig& config() const { return config_; }
  bool dedup() const { return dedup_; }

  /// \brief Records indexed on one side (dedup: both sides report the single
  /// table's count).
  size_t num_records(BlockingSide side) const {
    return entities(side).size();
  }

  /// \brief Appends one record's postings. `entity_id` is the generator
  /// ground truth used to flag AllCandidates pairs as equivalent; pass -1
  /// when unknown (production traffic), which marks every pair non-match.
  /// In dedup mode the side is ignored (single table). Fails if the key
  /// attribute is out of range for the record.
  Status AddRecord(BlockingSide side, const Record& record,
                   int64_t entity_id = -1);

  /// \brief Blocking candidates of a raw probe record on the target side:
  /// indices of target-side records sharing at least one sufficiently
  /// discriminating token, ascending. The df / block-size caps are applied
  /// to the target side's postings; the probe side's df cap cannot be
  /// evaluated for an unseen record and is skipped, so the result is a
  /// superset of the batch pairs involving the probe. Dedup indexes probe
  /// the single table regardless of `target`.
  std::vector<size_t> Candidates(const Record& probe,
                                 BlockingSide target) const;

  /// \brief Every candidate pair implied by the current postings, with the
  /// same caps, dedup semantics, and deterministic ordering as
  /// TokenBlocking over the same records.
  std::vector<RecordPair> AllCandidates() const;

 private:
  using Postings = std::unordered_map<std::string, std::vector<size_t>>;

  const Postings& postings(BlockingSide side) const {
    return !dedup_ && side == BlockingSide::kRight ? right_postings_
                                                   : left_postings_;
  }
  const std::vector<int64_t>& entities(BlockingSide side) const {
    return !dedup_ && side == BlockingSide::kRight ? right_entities_
                                                   : left_entities_;
  }
  /// \brief df cap of one side at its current size (TokenBlocking's
  /// max(max_token_df * records, 1)).
  size_t DfCap(BlockingSide side) const;

  BlockingConfig config_;
  bool dedup_ = false;
  Postings left_postings_;
  Postings right_postings_;
  std::vector<int64_t> left_entities_;
  std::vector<int64_t> right_entities_;
};

}  // namespace learnrisk

#endif  // LEARNRISK_GATEWAY_BLOCKING_INDEX_H_
