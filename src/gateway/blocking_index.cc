// Copyright 2026 The LearnRisk Authors

#include "gateway/blocking_index.h"

#include <algorithm>
#include <set>
#include <utility>

namespace learnrisk {

Result<BlockingIndex> BlockingIndex::Build(const Table& left,
                                           const Table& right,
                                           const BlockingConfig& config) {
  if (config.key_attribute >= left.schema().num_attributes() ||
      config.key_attribute >= right.schema().num_attributes()) {
    return Status::InvalidArgument("blocking key attribute out of range");
  }
  BlockingIndex index(config, &left == &right);
  for (size_t i = 0; i < left.num_records(); ++i) {
    LEARNRISK_RETURN_NOT_OK(
        index.AddRecord(BlockingSide::kLeft, left.record(i),
                        left.entity_id(i)));
  }
  if (!index.dedup_) {
    for (size_t i = 0; i < right.num_records(); ++i) {
      LEARNRISK_RETURN_NOT_OK(
          index.AddRecord(BlockingSide::kRight, right.record(i),
                          right.entity_id(i)));
    }
  }
  return index;
}

Status BlockingIndex::AddRecord(BlockingSide side, const Record& record,
                                int64_t entity_id) {
  if (config_.key_attribute >= record.values.size()) {
    return Status::InvalidArgument("blocking key attribute out of range");
  }
  const bool to_left = dedup_ || side == BlockingSide::kLeft;
  Postings& postings = to_left ? left_postings_ : right_postings_;
  std::vector<int64_t>& entities = to_left ? left_entities_ : right_entities_;
  const size_t index = entities.size();
  for (std::string& tok :
       BlockingKeyTokens(record, config_.key_attribute,
                         config_.min_token_length)) {
    postings[std::move(tok)].push_back(index);
  }
  entities.push_back(entity_id);
  return Status::OK();
}

size_t BlockingIndex::DfCap(BlockingSide side) const {
  const auto cap = static_cast<size_t>(
      config_.max_token_df * static_cast<double>(entities(side).size()));
  return std::max<size_t>(cap, 1);
}

std::vector<size_t> BlockingIndex::Candidates(const Record& probe,
                                              BlockingSide target) const {
  std::vector<size_t> out;
  if (config_.key_attribute >= probe.values.size()) return out;
  const Postings& target_postings = postings(target);
  const size_t df_cap = DfCap(target);
  std::set<size_t> found;
  for (const std::string& tok :
       BlockingKeyTokens(probe, config_.key_attribute,
                         config_.min_token_length)) {
    auto it = target_postings.find(tok);
    if (it == target_postings.end()) continue;
    const std::vector<size_t>& ids = it->second;
    if (ids.size() > df_cap) continue;          // token too common
    if (ids.size() > config_.max_block_size) continue;  // block purging
    found.insert(ids.begin(), ids.end());
  }
  out.assign(found.begin(), found.end());
  return out;
}

std::vector<RecordPair> BlockingIndex::AllCandidates() const {
  // Mirrors TokenBlocking's batch loop over the live postings: same caps
  // (evaluated at the current record counts), same dedup semantics, same
  // set-ordered deterministic output.
  const Postings& right_postings = postings(BlockingSide::kRight);
  const std::vector<int64_t>& right_entities = entities(BlockingSide::kRight);
  const size_t left_df_cap = DfCap(BlockingSide::kLeft);
  const size_t right_df_cap = DfCap(BlockingSide::kRight);

  std::set<std::pair<size_t, size_t>> pair_set;
  for (const auto& [token, left_ids] : left_postings_) {
    auto it = right_postings.find(token);
    if (it == right_postings.end()) continue;
    const std::vector<size_t>& right_ids = it->second;
    if (left_ids.size() > left_df_cap || right_ids.size() > right_df_cap) {
      continue;  // token too common to be discriminating
    }
    if (left_ids.size() > config_.max_block_size ||
        right_ids.size() > config_.max_block_size) {
      continue;  // block purging
    }
    for (size_t li : left_ids) {
      for (size_t ri : right_ids) {
        if (dedup_ && li >= ri) continue;
        pair_set.emplace(li, ri);
      }
    }
  }

  std::vector<RecordPair> pairs;
  pairs.reserve(pair_set.size());
  for (const auto& [li, ri] : pair_set) {
    // Unknown entities (-1) never count as equivalent.
    const bool equivalent =
        left_entities_[li] >= 0 && left_entities_[li] == right_entities[ri];
    pairs.push_back(RecordPair{li, ri, equivalent});
  }
  return pairs;
}

}  // namespace learnrisk
