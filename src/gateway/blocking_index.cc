// Copyright 2026 The LearnRisk Authors

#include "gateway/blocking_index.h"

#include <algorithm>
#include <set>
#include <utility>

namespace learnrisk {

Result<BlockingIndex> BlockingIndex::Build(const Table& left,
                                           const Table& right,
                                           const BlockingConfig& config) {
  if (config.key_attribute >= left.schema().num_attributes() ||
      config.key_attribute >= right.schema().num_attributes()) {
    return Status::InvalidArgument("blocking key attribute out of range");
  }
  BlockingIndex index(config, &left == &right);
  auto bulk_load = [&config](Side* side, const Table& table) {
    auto segment = std::make_shared<Segment>();
    segment->base = 0;
    segment->entities.reserve(table.num_records());
    for (size_t i = 0; i < table.num_records(); ++i) {
      for (std::string& tok :
           BlockingKeyTokens(table.record(i), config.key_attribute,
                             config.min_token_length)) {
        segment->postings[std::move(tok)].push_back(i);
      }
      segment->entities.push_back(table.entity_id(i));
    }
    side->num_records = table.num_records();
    if (table.num_records() > 0) side->segments.push_back(std::move(segment));
  };
  bulk_load(&index.left_, left);
  if (!index.dedup_) bulk_load(&index.right_, right);
  return index;
}

Status BlockingIndex::AddRecord(BlockingSide side, const Record& record,
                                int64_t entity_id) {
  if (config_.key_attribute >= record.values.size()) {
    return Status::InvalidArgument("blocking key attribute out of range");
  }
  Side& s = side_of(side);
  const size_t index = s.num_records;
  auto tail = std::make_shared<Segment>();
  tail->base = index;
  for (std::string& tok :
       BlockingKeyTokens(record, config_.key_attribute,
                         config_.min_token_length)) {
    tail->postings[std::move(tok)].push_back(index);
  }
  tail->entities.push_back(entity_id);
  for (const auto& [tok, ids] : tail->postings) {
    (void)ids;
    for (const auto& segment : s.segments) {
      if (segment->postings.count(tok) > 0) {
        tail->prior.insert(tok);
        break;
      }
    }
  }
  s.segments.push_back(std::move(tail));
  s.num_records = index + 1;

  // Binary-counter compaction: merge while the tail has grown at least as
  // large as its predecessor. Sizes stay strictly decreasing, so a side
  // holds O(log n) segments and each record is merged O(log n) times.
  // Merges build fresh segments — shared (published) segments are immutable.
  while (s.segments.size() >= 2) {
    const Segment& a = *s.segments[s.segments.size() - 2];
    const Segment& b = *s.segments.back();
    if (b.num_records() < a.num_records()) break;
    auto merged = std::make_shared<Segment>();
    merged->base = a.base;
    merged->postings = a.postings;
    merged->prior = a.prior;
    for (const auto& [tok, ids] : b.postings) {
      // A token only b holds predates the merged segment iff it predates a:
      // b.prior covers "before a, or in a", and "in a" is excluded here. For
      // tokens a holds, a.prior (already copied) is the answer.
      if (merged->postings.count(tok) == 0 && b.prior.count(tok) > 0) {
        merged->prior.insert(tok);
      }
      // b's ids all exceed a's (higher base), so appending keeps each
      // posting list ascending.
      std::vector<size_t>& list = merged->postings[tok];
      list.insert(list.end(), ids.begin(), ids.end());
    }
    merged->entities = a.entities;
    merged->entities.insert(merged->entities.end(), b.entities.begin(),
                            b.entities.end());
    s.segments.pop_back();
    s.segments.pop_back();
    s.segments.push_back(std::move(merged));
  }
  return Status::OK();
}

void BlockingIndex::ForEachToken(
    BlockingSide side,
    const std::function<void(const std::string&)>& fn) const {
  const Side& s = side_of(side);
  for (const auto& segment : s.segments) {
    for (const auto& [token, ids] : segment->postings) {
      (void)ids;
      // The prior set answers "did an earlier segment index this token?" in
      // one lookup, so each distinct token fires exactly once.
      if (segment->prior.count(token) > 0) continue;
      fn(token);
    }
  }
}

size_t BlockingIndex::TokenCount(BlockingSide side,
                                 const std::string& token) const {
  return CountToken(side_of(side), token);
}

void BlockingIndex::AppendTokenIds(BlockingSide side, const std::string& token,
                                   std::vector<size_t>* out) const {
  GatherIds(side_of(side), token, 0, out);
}

int64_t BlockingIndex::EntityAt(BlockingSide side, size_t id) const {
  return EntityOf(side_of(side), id);
}

size_t BlockingIndex::CountToken(const Side& side, const std::string& token) {
  size_t count = 0;
  for (const auto& segment : side.segments) {
    auto it = segment->postings.find(token);
    if (it != segment->postings.end()) count += it->second.size();
  }
  return count;
}

void BlockingIndex::GatherIds(const Side& side, const std::string& token,
                              size_t first, std::vector<size_t>* out) {
  for (size_t s = first; s < side.segments.size(); ++s) {
    auto it = side.segments[s]->postings.find(token);
    if (it == side.segments[s]->postings.end()) continue;
    out->insert(out->end(), it->second.begin(), it->second.end());
  }
}

int64_t BlockingIndex::EntityOf(const Side& side, size_t id) {
  // Last segment whose base is <= id; segments are base-ordered.
  auto it = std::upper_bound(
      side.segments.begin(), side.segments.end(), id,
      [](size_t v, const std::shared_ptr<const Segment>& segment) {
        return v < segment->base;
      });
  const Segment& segment = **(it - 1);
  return segment.entities[id - segment.base];
}

size_t BlockingIndex::DfCapAt(size_t records) const {
  const auto cap = static_cast<size_t>(config_.max_token_df *
                                       static_cast<double>(records));
  return std::max<size_t>(cap, 1);
}

std::vector<size_t> BlockingIndex::Candidates(const Record& probe,
                                              BlockingSide target) const {
  std::vector<size_t> out;
  if (config_.key_attribute >= probe.values.size()) return out;
  const Side& target_side = side_of(target);
  // The probe is scored as if it were the next record appended to the
  // opposite (probe) side — dedup folds both sides onto the single table —
  // so every df / block-size cap below is exactly what TokenBlocking would
  // evaluate over the hypothetical (probe-appended) tables.
  const Side& probe_side = dedup_ ? target_side : side_of(OppositeSide(target));
  const size_t probe_df_cap = DfCapAt(probe_side.num_records + 1);
  const size_t target_df_cap =
      dedup_ ? probe_df_cap : DfCapAt(target_side.num_records);

  std::set<size_t> found;
  std::vector<const std::vector<size_t>*> lists;  // per-segment posting refs
  for (const std::string& tok :
       BlockingKeyTokens(probe, config_.key_attribute,
                         config_.min_token_length)) {
    // One pass over the target segments: count and remember the matching
    // posting lists, so passing the caps below doesn't re-find them.
    lists.clear();
    size_t target_count = 0;
    for (const auto& segment : target_side.segments) {
      auto it = segment->postings.find(tok);
      if (it == segment->postings.end()) continue;
      lists.push_back(&it->second);
      target_count += it->second.size();
    }
    if (target_count == 0) continue;
    // Block sizes with the probe appended: the probe joins its own side's
    // posting list (dedup: the single shared list).
    const size_t probe_count =
        (dedup_ ? target_count : CountToken(probe_side, tok)) + 1;
    const size_t target_block = dedup_ ? target_count + 1 : target_count;
    if (target_block > target_df_cap ||
        target_block > config_.max_block_size) {
      continue;  // token too common on the target side
    }
    if (probe_count > probe_df_cap || probe_count > config_.max_block_size) {
      continue;  // token too common on the probe's side
    }
    for (const std::vector<size_t>* ids : lists) {
      found.insert(ids->begin(), ids->end());
    }
  }
  out.assign(found.begin(), found.end());
  return out;
}

std::vector<RecordPair> BlockingIndex::AllCandidates() const {
  // Mirrors TokenBlocking's batch loop over the live postings: same caps
  // (evaluated at the current record counts), same dedup semantics, same
  // set-ordered deterministic output. A token is processed once, at the
  // first left segment that contains it, with its full per-side lists
  // gathered across segments.
  const Side& left = left_;
  const Side& right = side_of(BlockingSide::kRight);
  const size_t left_df_cap = DfCapAt(left.num_records);
  const size_t right_df_cap = DfCapAt(right.num_records);

  std::set<std::pair<size_t, size_t>> pair_set;
  std::vector<size_t> left_ids;
  std::vector<size_t> right_ids;
  for (size_t s = 0; s < left.segments.size(); ++s) {
    for (const auto& [token, seg_ids] : left.segments[s]->postings) {
      (void)seg_ids;
      // The segment's prior set answers "did an earlier segment index this
      // token?" in one lookup — no per-token walk over earlier segments.
      if (left.segments[s]->prior.count(token) > 0) continue;
      left_ids.clear();
      GatherIds(left, token, s, &left_ids);
      if (!dedup_) {
        right_ids.clear();
        GatherIds(right, token, 0, &right_ids);
      }
      const std::vector<size_t>& rids = dedup_ ? left_ids : right_ids;
      if (rids.empty()) continue;
      if (left_ids.size() > left_df_cap || rids.size() > right_df_cap) {
        continue;  // token too common to be discriminating
      }
      if (left_ids.size() > config_.max_block_size ||
          rids.size() > config_.max_block_size) {
        continue;  // block purging
      }
      for (size_t li : left_ids) {
        for (size_t ri : rids) {
          if (dedup_ && li >= ri) continue;
          pair_set.emplace(li, ri);
        }
      }
    }
  }

  std::vector<RecordPair> pairs;
  pairs.reserve(pair_set.size());
  for (const auto& [li, ri] : pair_set) {
    // Unknown entities (-1) never count as equivalent.
    const int64_t left_entity = EntityOf(left, li);
    const bool equivalent =
        left_entity >= 0 && left_entity == EntityOf(right, ri);
    pairs.push_back(RecordPair{li, ri, equivalent});
  }
  return pairs;
}

}  // namespace learnrisk
