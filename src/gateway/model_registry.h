// Copyright 2026 The LearnRisk Authors
// Multi-tenant model registry — the top layer of the request gateway's
// serving side. Maps namespace strings (one per dataset / workload) to
// independent ServingEngines, so each tenant hot-swaps its model without
// touching the others. Supports an LRU-style cap on resident snapshots
// (least-recently-used engines spill their model to disk via model_io and
// reload lazily on next access, with version numbers staying monotonic
// across the round trip) and save/load of the whole registry as a manifest
// plus one model file per namespace.

#ifndef LEARNRISK_GATEWAY_MODEL_REGISTRY_H_
#define LEARNRISK_GATEWAY_MODEL_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "serve/serving_engine.h"

namespace learnrisk {

/// \brief Telemetry hooks for the registry's LRU machinery (all optional) —
/// the counters behind the "LRU stats" in Gateway::MetricsSnapshot(); the
/// resident/namespace counts are exposed as snapshot-time gauge callbacks
/// over resident_count() / Namespaces(). Instruments are owned by a
/// MetricRegistry; null pointers disable recording. Set before the registry
/// is shared across threads (see ModelRegistry::set_metrics).
struct ModelRegistryMetrics {
  ShardedCounter* publishes = nullptr;       ///< successful Publish calls
  ShardedCounter* engine_hits = nullptr;     ///< Engine() found it resident
  ShardedCounter* engine_reloads = nullptr;  ///< spilled snapshot reloaded
  ShardedCounter* spills = nullptr;          ///< eviction model files written
  ShardedCounter* evictions = nullptr;       ///< engines actually dropped
  /// Eviction rounds that left the registry over cap because every victim
  /// candidate was pinned by an in-flight publish.
  ShardedCounter* pinned_engine_waits = nullptr;
};

/// \brief Registry configuration.
struct ModelRegistryOptions {
  /// Maximum number of namespaces with a resident (in-memory) snapshot;
  /// 0 = unlimited. Requires `spill_dir` when > 0.
  size_t max_resident = 0;
  /// Directory where evicted snapshots are persisted (created on demand).
  std::string spill_dir;
  /// Test hook: invoked with the namespace being spilled, after the
  /// registry lock is released and before its model is written to disk.
  /// Tests inject latency here to verify spill IO never blocks the
  /// registry (see tests/registry_spill_test.cc). Null in production.
  std::function<void(const std::string&)> spill_io_hook;
};

/// \brief Thread-safe namespace -> ServingEngine map with LRU spill.
///
/// All methods are safe to call concurrently. The registry lock only guards
/// the map and LRU bookkeeping; the expensive snapshot build inside
/// ServingEngine::Publish runs outside it, so scoring traffic on other
/// namespaces (and on the same namespace, against the previous snapshot) is
/// never blocked by a publish.
///
/// Eviction / pinning semantics (with `max_resident` > 0):
///  - Eviction is LRU over a monotone touch clock: every Publish / Engine
///    access stamps the entry, and exceeding the cap spills the
///    least-recently-used *other* entries' models to `spill_dir` via
///    model_io, dropping their engines.
///  - In-flight publishes pin their engine: an entry whose `publishing`
///    count is nonzero is skipped by eviction, because spilling mid-publish
///    would fork a second engine for the namespace, orphaning the in-flight
///    model and duplicating version numbers.
///  - Callers holding a shared_ptr<ServingEngine> from Engine() are
///    implicitly pinned too: eviction only drops the registry's reference,
///    so a handed-out engine stays alive and scoreable; the registry simply
///    reloads a fresh engine (with a resumed version counter) on the
///    namespace's next access.
///  - Spill IO runs *outside* the registry lock, in two phases: victims are
///    planned (and flagged `spilling`, pinning them against a second
///    concurrent spill) under the lock, their models are written with the
///    lock released, and each spill is finalized under the lock again — the
///    engine is dropped only if its version still matches the one that was
///    saved, so a publish that lands mid-spill keeps the namespace resident
///    instead of being silently replaced by a stale file. A slow disk
///    therefore never delays Publish / Engine / Score on other namespaces
///    (tests/registry_spill_test.cc). Cap enforcement is also best-effort
///    on the serving path: a Publish or Engine call whose own work
///    succeeded never fails because some namespace could not be written to
///    disk — the registry stays over cap and retries on the next access;
///    explicit persistence (SaveAll) surfaces IO errors.
///  - SaveAll / LoadAll are administrative whole-registry operations and do
///    hold the lock across their IO; they are not on the serving path.
class ModelRegistry {
 public:
  explicit ModelRegistry(ModelRegistryOptions options = {});

  /// \brief True for names the registry accepts: 1-128 chars drawn from
  /// [A-Za-z0-9_.-], starting with an alphanumeric (names double as spill
  /// file names, so path separators and dot-prefixes are rejected).
  static bool ValidNamespace(const std::string& ns);

  /// \brief Publishes a model under the namespace (creating it on first
  /// use) and returns the namespace's new version. Versions are
  /// per-namespace, unique and increasing — including across spill/reload.
  /// The snapshot build runs outside the registry lock with the target
  /// engine pinned against eviction for the duration. `drift_baseline`
  /// rides the new ScorerSnapshot (see ServingEngine::Publish); spill files
  /// do not carry it, so a spilled-and-reloaded namespace serves without
  /// one until the next Publish.
  Result<uint64_t> Publish(const std::string& ns, RiskModel model,
                           std::shared_ptr<const DriftBaseline>
                               drift_baseline = nullptr);

  /// \brief The namespace's engine, reloading a spilled snapshot if needed.
  /// NotFound for namespaces never published. The returned pointer stays
  /// valid (and scoreable) even if the registry later evicts the namespace.
  Result<std::shared_ptr<ServingEngine>> Engine(const std::string& ns);

  bool Contains(const std::string& ns) const;

  /// \brief All namespaces, sorted.
  std::vector<std::string> Namespaces() const;

  /// \brief Namespaces whose snapshot is currently in memory.
  size_t resident_count() const;

  /// \brief Writes a manifest plus one model file per namespace into `dir`
  /// (created on demand). Namespaces without a published model are skipped.
  Status SaveAll(const std::string& dir) const;

  /// \brief Publishes every model of a SaveAll directory into this registry
  /// and returns how many namespaces were loaded. Versions resume from the
  /// manifest, so a reloaded registry never re-serves an old version number.
  /// All-or-nothing: the manifest and every model file are parsed and
  /// validated *before* anything is published, so a corrupted or truncated
  /// directory fails with a diagnostic Status and leaves the registry
  /// exactly as it was — no namespaces half-loaded, no version floors
  /// seeded for models that never arrived.
  Result<size_t> LoadAll(const std::string& dir);

  /// \brief Raises the namespace's version floor: the next Publish returns a
  /// version strictly greater than `version`. Idempotent; never lowers an
  /// existing floor. Used by durable-namespace recovery to re-publish a
  /// checkpointed model under the exact version the manifest recorded.
  void EnsureVersionAtLeast(const std::string& ns, uint64_t version);

  /// \brief Installs telemetry hooks: LRU counters for this registry plus
  /// the engine-level hooks copied onto every ServingEngine the registry
  /// creates from now on (publish-created and spill-reloaded alike). Call
  /// before the registry is shared across threads — the Gateway wires this
  /// in its constructor.
  void set_metrics(const ModelRegistryMetrics& metrics,
                   const ServingEngineMetrics& engine_metrics) {
    metrics_ = metrics;
    engine_metrics_ = engine_metrics;
  }

 private:
  struct Entry {
    std::shared_ptr<ServingEngine> engine;  ///< null while spilled
    uint64_t last_version = 0;  ///< highest version ever published
    uint64_t touched = 0;       ///< LRU clock value of the last access
    /// Publishes currently in flight against `engine`. Eviction skips such
    /// entries: spilling mid-publish would fork a second engine for the
    /// namespace, orphaning the in-flight model and duplicating versions.
    size_t publishing = 0;
    /// True while this entry's model is being written to disk outside the
    /// lock; planning skips flagged entries so one victim is never spilled
    /// twice concurrently.
    bool spilling = false;
  };

  /// \brief One planned eviction: the engine to persist and the version
  /// the plan observed (re-validated at finalization).
  struct SpillJob {
    std::string ns;
    std::shared_ptr<ServingEngine> engine;
    uint64_t version = 0;
  };

  std::string SpillPath(const std::string& ns) const;
  /// \brief Ensures the entry's engine exists (spilled namespaces reload
  /// from disk); returns it. Caller holds mu_.
  Result<std::shared_ptr<ServingEngine>> ResidentEngineLocked(
      const std::string& ns, Entry* entry);
  /// \brief Picks least-recently-used unpinned resident engines until the
  /// cap holds, marking them `spilling`. Caller holds mu_.
  std::vector<SpillJob> PlanEvictionsLocked();
  /// \brief Plans evictions under the lock and runs the spill IO outside
  /// it, looping until the cap holds or no victim is eligible. Caller must
  /// NOT hold mu_.
  Status SpillOverCap();

  ModelRegistryOptions options_;
  /// Null pointers = no instrumentation; written once before concurrent use.
  ModelRegistryMetrics metrics_;
  /// Copied onto every ServingEngine this registry creates.
  ServingEngineMetrics engine_metrics_;
  mutable std::mutex mu_;
  uint64_t clock_ = 0;
  std::map<std::string, Entry> entries_;
};

}  // namespace learnrisk

#endif  // LEARNRISK_GATEWAY_MODEL_REGISTRY_H_
