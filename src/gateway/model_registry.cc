// Copyright 2026 The LearnRisk Authors

#include "gateway/model_registry.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "risk/model_io.h"

namespace learnrisk {
namespace {

constexpr char kManifestName[] = "registry.manifest";
constexpr char kManifestHeader[] = "learnrisk-registry v1";

Status EnsureDirectory(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create directory '" + dir +
                           "': " + ec.message());
  }
  return Status::OK();
}

}  // namespace

ModelRegistry::ModelRegistry(ModelRegistryOptions options)
    : options_(std::move(options)) {}

bool ModelRegistry::ValidNamespace(const std::string& ns) {
  if (ns.empty() || ns.size() > 128) return false;
  if (!std::isalnum(static_cast<unsigned char>(ns.front()))) return false;
  for (char c : ns) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '.' && c != '-') {
      return false;
    }
  }
  return true;
}

std::string ModelRegistry::SpillPath(const std::string& ns) const {
  return options_.spill_dir + "/" + ns + ".model";
}

Result<uint64_t> ModelRegistry::Publish(
    const std::string& ns, RiskModel model,
    std::shared_ptr<const DriftBaseline> drift_baseline) {
  if (!ValidNamespace(ns)) {
    return Status::InvalidArgument("invalid namespace '" + ns + "'");
  }
  if (options_.max_resident > 0 && options_.spill_dir.empty()) {
    return Status::InvalidArgument(
        "ModelRegistryOptions.max_resident requires a spill_dir");
  }

  std::shared_ptr<ServingEngine> engine;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Entry& entry = entries_[ns];
    entry.touched = ++clock_;
    if (entry.engine == nullptr) {
      entry.engine = std::make_shared<ServingEngine>(entry.last_version + 1);
      entry.engine->set_metrics(engine_metrics_);
    }
    engine = entry.engine;
    // Pin the engine against eviction for the duration of the publish: all
    // concurrent publishers must funnel into this one engine so its counter
    // keeps versions unique, and a spill mid-flight would orphan the model.
    ++entry.publishing;
  }

  // The snapshot build (the expensive part of Publish) runs outside the
  // registry lock; concurrent publishes to the same namespace serialize
  // inside the engine's forward-only swap.
  const uint64_t version =
      engine->Publish(std::move(model), std::move(drift_baseline));

  {
    std::lock_guard<std::mutex> lock(mu_);
    Entry& entry = entries_[ns];
    --entry.publishing;
    entry.last_version = std::max(entry.last_version, version);
    // The pin kept entry.engine == engine, so a later eviction spills (and
    // a reload re-serves) the snapshot that includes this publish.
  }
  if (metrics_.publishes != nullptr) metrics_.publishes->Add(1);
  // Enforce the residency cap with the lock released during the spill IO;
  // the cap can be exceeded transiently while a spill is in flight. The
  // publish itself has already succeeded — the engine is serving the new
  // snapshot — so cap enforcement is best-effort here: reporting a spill
  // IO failure as a failed publish would invite a retry that duplicates
  // the version. The registry just stays over cap and retries the spill on
  // the next access.
  (void)SpillOverCap();
  return version;
}

Result<std::shared_ptr<ServingEngine>> ModelRegistry::ResidentEngineLocked(
    const std::string& ns, Entry* entry) {
  if (entry->engine == nullptr) {
    auto engine = std::make_shared<ServingEngine>(entry->last_version + 1);
    engine->set_metrics(engine_metrics_);
    Result<uint64_t> version = engine->LoadAndPublish(SpillPath(ns));
    if (!version.ok()) return version.status();
    entry->last_version = std::max(entry->last_version, *version);
    entry->engine = std::move(engine);
    if (metrics_.engine_reloads != nullptr) metrics_.engine_reloads->Add(1);
  } else if (metrics_.engine_hits != nullptr) {
    metrics_.engine_hits->Add(1);
  }
  return entry->engine;
}

Result<std::shared_ptr<ServingEngine>> ModelRegistry::Engine(
    const std::string& ns) {
  Result<std::shared_ptr<ServingEngine>> engine{std::shared_ptr<ServingEngine>()};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(ns);
    if (it == entries_.end()) {
      return Status::NotFound("unknown namespace '" + ns + "'");
    }
    it->second.touched = ++clock_;
    engine = ResidentEngineLocked(ns, &it->second);
    if (!engine.ok()) return engine.status();
  }
  // Best-effort cap enforcement (see Publish): the lookup succeeded, and a
  // failure to spill some other namespace must not fail this caller.
  (void)SpillOverCap();
  return engine;
}

bool ModelRegistry::Contains(const std::string& ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(ns) > 0;
}

std::vector<std::string> ModelRegistry::Namespaces() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [ns, entry] : entries_) names.push_back(ns);
  return names;
}

size_t ModelRegistry::resident_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = 0;
  for (const auto& [ns, entry] : entries_) {
    if (entry.engine != nullptr) ++count;
  }
  return count;
}

std::vector<ModelRegistry::SpillJob> ModelRegistry::PlanEvictionsLocked() {
  std::vector<SpillJob> jobs;
  if (options_.max_resident == 0) return jobs;
  auto resident = [this]() {
    size_t count = 0;
    for (const auto& [ns, entry] : entries_) {
      // Entries being spilled — by this plan or a concurrent caller's — are
      // already on their way out; counting them would over-evict.
      if (entry.engine != nullptr && !entry.spilling) ++count;
    }
    return count;
  };
  while (resident() > options_.max_resident) {
    // Least-recently-touched entry whose snapshot can be spilled. Engines
    // still waiting for their first publish have nothing to save and stay
    // resident (they hold no snapshot memory anyway).
    std::map<std::string, Entry>::iterator victim = entries_.end();
    bool skipped_pinned = false;
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.engine == nullptr) continue;
      if (!it->second.engine->has_model()) continue;
      if (it->second.publishing > 0 || it->second.spilling) {
        skipped_pinned = true;  // pinned by publish or an in-flight spill
        continue;
      }
      if (victim == entries_.end() ||
          it->second.touched < victim->second.touched) {
        victim = it;
      }
    }
    if (victim == entries_.end()) {
      // Every over-cap entry is pinned; the registry stays over cap until
      // the next access retries.
      if (skipped_pinned && metrics_.pinned_engine_waits != nullptr) {
        metrics_.pinned_engine_waits->Add(1);
      }
      break;
    }
    victim->second.spilling = true;
    jobs.push_back(SpillJob{victim->first, victim->second.engine,
                            victim->second.engine->version()});
  }
  return jobs;
}

Status ModelRegistry::SpillOverCap() {
  while (true) {
    std::vector<SpillJob> jobs;
    {
      std::lock_guard<std::mutex> lock(mu_);
      jobs = PlanEvictionsLocked();
    }
    if (jobs.empty()) return Status::OK();
    Status failed = Status::OK();
    for (const SpillJob& job : jobs) {
      // The expensive part — directory creation and model IO — runs with
      // the registry unlocked: publishes and engine lookups (on this and
      // every other namespace) proceed while the disk is busy.
      Status io = EnsureDirectory(options_.spill_dir);
      if (io.ok()) {
        if (options_.spill_io_hook) options_.spill_io_hook(job.ns);
        io = job.engine->SaveCurrent(SpillPath(job.ns));
      }
      if (io.ok() && metrics_.spills != nullptr) metrics_.spills->Add(1);
      bool evicted = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        Entry& entry = entries_[job.ns];
        entry.spilling = false;
        // Drop the engine only if the spill file really holds its current
        // state: a publish that landed mid-IO bumps the version, in which
        // case the namespace stays resident (the stale file is overwritten
        // by the next successful spill).
        if (io.ok() && entry.publishing == 0 && entry.engine == job.engine &&
            entry.engine->version() == job.version) {
          entry.engine = nullptr;
          evicted = true;
        }
      }
      if (evicted && metrics_.evictions != nullptr) metrics_.evictions->Add(1);
      if (!io.ok() && failed.ok()) failed = io;
    }
    LEARNRISK_RETURN_NOT_OK(failed);
  }
}

Status ModelRegistry::SaveAll(const std::string& dir) const {
  LEARNRISK_RETURN_NOT_OK(EnsureDirectory(dir));
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream manifest;
  manifest << kManifestHeader << "\n";
  for (const auto& [ns, entry] : entries_) {
    const std::string path = dir + "/" + ns + ".model";
    if (entry.engine != nullptr && entry.engine->has_model()) {
      LEARNRISK_RETURN_NOT_OK(entry.engine->SaveCurrent(path));
    } else if (entry.engine == nullptr) {
      // Spilled: the spill file is the current snapshot; copy it over.
      std::error_code ec;
      std::filesystem::copy_file(
          SpillPath(ns), path, std::filesystem::copy_options::overwrite_existing,
          ec);
      if (ec) {
        return Status::IOError("cannot copy spilled model for namespace '" +
                               ns + "': " + ec.message());
      }
    } else {
      continue;  // registered but never published; nothing to persist
    }
    manifest << "namespace " << ns << " " << entry.last_version << "\n";
  }
  std::ofstream out(dir + "/" + kManifestName);
  if (!out) return Status::IOError("cannot write manifest in '" + dir + "'");
  out << manifest.str();
  out.close();
  if (!out) return Status::IOError("error writing manifest in '" + dir + "'");
  return Status::OK();
}

Result<size_t> ModelRegistry::LoadAll(const std::string& dir) {
  // Up-front config check: with a residency cap but no spill_dir every
  // Publish below would fail, after some namespaces had already landed.
  if (options_.max_resident > 0 && options_.spill_dir.empty()) {
    return Status::InvalidArgument(
        "ModelRegistryOptions.max_resident requires a spill_dir");
  }
  std::ifstream in(dir + "/" + kManifestName);
  if (!in) {
    return Status::IOError("cannot open registry manifest in '" + dir + "'");
  }
  std::string header;
  std::getline(in, header);
  if (header != kManifestHeader) {
    return Status::InvalidArgument("unrecognized registry manifest header '" +
                                   header + "'");
  }
  // Stage everything first: parse the whole manifest and load every model
  // file before touching registry state, so a corrupted or truncated
  // directory cannot leave the registry partially loaded.
  struct Staged {
    std::string ns;
    uint64_t version;
    RiskModel model;
  };
  std::vector<Staged> staged;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() == '#') continue;
    std::istringstream fields(line);
    std::string tag;
    std::string ns;
    uint64_t version = 0;
    if (!(fields >> tag >> ns >> version) || tag != "namespace") {
      return Status::InvalidArgument("malformed manifest line '" + line + "'");
    }
    if (!ValidNamespace(ns)) {
      return Status::InvalidArgument("invalid namespace '" + ns +
                                     "' in manifest");
    }
    for (const Staged& s : staged) {
      if (s.ns == ns) {
        return Status::InvalidArgument("duplicate namespace '" + ns +
                                       "' in manifest");
      }
    }
    Result<RiskModel> model = LoadRiskModel(dir + "/" + ns + ".model");
    if (!model.ok()) return model.status();
    staged.push_back(Staged{ns, version, model.MoveValueOrDie()});
  }
  if (in.bad()) {
    return Status::IOError("error reading registry manifest in '" + dir + "'");
  }
  // Everything validated; now publish. Seed each version floor first so the
  // publish continues the saved registry's numbering instead of restarting
  // at 1.
  for (Staged& s : staged) {
    EnsureVersionAtLeast(s.ns, s.version);
    Result<uint64_t> published = Publish(s.ns, std::move(s.model));
    if (!published.ok()) return published.status();
  }
  return staged.size();
}

void ModelRegistry::EnsureVersionAtLeast(const std::string& ns,
                                         uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[ns];
  entry.last_version = std::max(entry.last_version, version);
  // The floor only takes effect when the next Publish creates the engine
  // (entry.engine == nullptr) — exactly the recovery / reload situations
  // this exists for; a resident engine keeps its own forward-only counter.
}

}  // namespace learnrisk
