// Copyright 2026 The LearnRisk Authors

#include "gateway/feature_pipeline.h"

#include <utility>

#include "common/parallel.h"
#include "common/timer.h"
#include "gateway/namespace_segments.h"
#include "gateway/shard_merge.h"

namespace learnrisk {

FeaturePipeline::FeaturePipeline(
    MetricSuite suite, std::shared_ptr<const BinaryClassifier> classifier,
    std::vector<size_t> classifier_columns)
    : suite_(std::move(suite)),
      classifier_(std::move(classifier)),
      classifier_columns_(std::move(classifier_columns)),
      metric_names_(suite_.MetricNames()) {}

template <typename EvalRow>
Result<FeaturizedBatch> FeaturePipeline::RunImpl(
    size_t n, const EvalRow& eval_row) const {
  if (classifier_ == nullptr) {
    return Status::FailedPrecondition("feature pipeline has no classifier");
  }
  const size_t num_metrics = suite_.num_metrics();
  if (num_metrics == 0) {
    return Status::FailedPrecondition("feature pipeline has an empty suite");
  }
  for (size_t c : classifier_columns_) {
    if (c >= num_metrics) {
      return Status::InvalidArgument("classifier column out of range");
    }
  }

  FeaturizedBatch batch;
  batch.features = FeatureMatrix(n, num_metrics);
  batch.features.column_names = suite_.MetricNames();
  batch.probs.resize(n);
  const bool gather = !classifier_columns_.empty();
  const size_t classifier_width =
      gather ? classifier_columns_.size() : num_metrics;
  // Two sequential chunk-parallel passes over the same rows, timed
  // separately so the gateway can attribute featurize vs classify latency.
  // Outputs are bit-identical to the previous fused loop: pass 1 writes the
  // exact metric rows pass 2 reads, and neither pass reorders arithmetic.
  Timer timer;
  ParallelForRange(
      n,
      [&](size_t begin, size_t end) {
        // Per-thread scratch: kernel buffers for the prepared metric path;
        // metric values land directly in the output matrix.
        MetricScratch scratch;
        for (size_t i = begin; i < end; ++i) {
          eval_row(i, batch.features.mutable_row(i), &scratch);
        }
      },
      parallelism_);
  batch.featurize_ms = timer.ElapsedMillis();

  timer.Reset();
  ParallelForRange(
      n,
      [&](size_t begin, size_t end) {
        // Per-thread gather buffer for the classifier's input columns.
        std::vector<double> gathered(gather ? classifier_width : 0);
        for (size_t i = begin; i < end; ++i) {
          const double* row = batch.features.row(i);
          const double* classifier_input = row;
          if (gather) {
            for (size_t k = 0; k < classifier_width; ++k) {
              gathered[k] = row[classifier_columns_[k]];
            }
            classifier_input = gathered.data();
          }
          batch.probs[i] =
              classifier_->PredictProba(classifier_input, classifier_width);
        }
      },
      parallelism_);
  batch.classify_ms = timer.ElapsedMillis();
  return batch;
}

Result<FeaturizedBatch> FeaturePipeline::Run(
    const Table& left, const Table& right,
    const std::vector<RecordPair>& pairs) const {
  for (const RecordPair& pair : pairs) {
    if (pair.left >= left.num_records() || pair.right >= right.num_records()) {
      return Status::OutOfRange("record pair index out of table range");
    }
  }
  return RunImpl(pairs.size(),
                 [&](size_t i, double* row, MetricScratch* /*scratch*/) {
                   suite_.EvaluatePairInto(left.record(pairs[i].left),
                                           right.record(pairs[i].right), row);
                 });
}

Result<FeaturizedBatch> FeaturePipeline::RunProbe(
    const Record& probe, const Table& table,
    const std::vector<size_t>& candidates) const {
  if (probe.values.size() != table.schema().num_attributes()) {
    return Status::InvalidArgument(
        "probe record width does not match the table schema");
  }
  for (size_t c : candidates) {
    if (c >= table.num_records()) {
      return Status::OutOfRange("candidate record index out of table range");
    }
  }
  return RunImpl(candidates.size(),
                 [&](size_t i, double* row, MetricScratch* /*scratch*/) {
                   suite_.EvaluatePairInto(probe, table.record(candidates[i]),
                                           row);
                 });
}

namespace {

// Uniform row access over the two prepared-store types. Both are always
// read through these helpers so the templated bodies below stay one copy.
inline const PreparedRecord& PreparedRow(const PreparedTable& t, size_t i) {
  return t.record(i);
}
inline const PreparedRecord& PreparedRow(const SideStore& t, size_t i) {
  return t.prepared(i);
}
inline const PreparedRecord& PreparedRow(const ShardedSideView& t, size_t i) {
  return t.prepared(i);
}

// Bounds checks. The sharded view addresses records by global id, where
// validity is per-shard (a global id can exceed a momentarily smaller
// sibling shard while being valid on its own shard), so it answers through
// its exact InRange instead of a flat size comparison.
inline bool RowInRange(const PreparedTable& t, size_t i) {
  return i < t.size();
}
inline bool RowInRange(const SideStore& t, size_t i) { return i < t.size(); }
inline bool RowInRange(const ShardedSideView& t, size_t i) {
  return t.InRange(i);
}

}  // namespace

template <typename LeftStore, typename RightStore>
Result<FeaturizedBatch> FeaturePipeline::RunPreparedImpl(
    const LeftStore& left, const RightStore& right,
    const std::vector<RecordPair>& pairs) const {
  for (const RecordPair& pair : pairs) {
    if (!RowInRange(left, pair.left) || !RowInRange(right, pair.right)) {
      return Status::OutOfRange("record pair index out of table range");
    }
  }
  // Contiguous stores (flat PreparedTables, single-segment SideStores)
  // evaluate through direct row pointers, skipping per-access resolution.
  const PreparedRecord* left_rows = left.contiguous_prepared();
  const PreparedRecord* right_rows = right.contiguous_prepared();
  if (left_rows != nullptr && right_rows != nullptr) {
    return RunImpl(pairs.size(),
                   [&](size_t i, double* row, MetricScratch* scratch) {
                     suite_.EvaluatePairPreparedInto(
                         left_rows[pairs[i].left], right_rows[pairs[i].right],
                         scratch, row);
                   });
  }
  return RunImpl(pairs.size(),
                 [&](size_t i, double* row, MetricScratch* scratch) {
                   suite_.EvaluatePairPreparedInto(
                       PreparedRow(left, pairs[i].left),
                       PreparedRow(right, pairs[i].right), scratch, row);
                 });
}

template <typename Store>
Result<FeaturizedBatch> FeaturePipeline::RunProbePreparedImpl(
    const PreparedRecord& probe, const Store& table,
    const std::vector<size_t>& candidates) const {
  if (probe.values.size() != suite_.schema().num_attributes()) {
    return Status::InvalidArgument(
        "probe record width does not match the pipeline schema");
  }
  for (size_t c : candidates) {
    if (!RowInRange(table, c)) {
      return Status::OutOfRange("candidate record index out of table range");
    }
  }
  return RunImpl(candidates.size(),
                 [&](size_t i, double* row, MetricScratch* scratch) {
                   suite_.EvaluatePairPreparedInto(
                       probe, PreparedRow(table, candidates[i]), scratch,
                       row);
                 });
}

Result<FeaturizedBatch> FeaturePipeline::RunPrepared(
    const PreparedTable& left, const PreparedTable& right,
    const std::vector<RecordPair>& pairs) const {
  return RunPreparedImpl(left, right, pairs);
}

Result<FeaturizedBatch> FeaturePipeline::RunProbePrepared(
    const PreparedRecord& probe, const PreparedTable& table,
    const std::vector<size_t>& candidates) const {
  return RunProbePreparedImpl(probe, table, candidates);
}

Result<FeaturizedBatch> FeaturePipeline::RunPrepared(
    const SideStore& left, const SideStore& right,
    const std::vector<RecordPair>& pairs) const {
  return RunPreparedImpl(left, right, pairs);
}

Result<FeaturizedBatch> FeaturePipeline::RunProbePrepared(
    const PreparedRecord& probe, const SideStore& table,
    const std::vector<size_t>& candidates) const {
  return RunProbePreparedImpl(probe, table, candidates);
}

Result<FeaturizedBatch> FeaturePipeline::RunPrepared(
    const ShardedSideView& left, const ShardedSideView& right,
    const std::vector<RecordPair>& pairs) const {
  return RunPreparedImpl(left, right, pairs);
}

Result<FeaturizedBatch> FeaturePipeline::RunProbePrepared(
    const PreparedRecord& probe, const ShardedSideView& table,
    const std::vector<size_t>& candidates) const {
  return RunProbePreparedImpl(probe, table, candidates);
}

}  // namespace learnrisk
