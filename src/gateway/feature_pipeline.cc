// Copyright 2026 The LearnRisk Authors

#include "gateway/feature_pipeline.h"

#include <utility>

#include "common/parallel.h"

namespace learnrisk {

FeaturePipeline::FeaturePipeline(
    MetricSuite suite, std::shared_ptr<const BinaryClassifier> classifier,
    std::vector<size_t> classifier_columns)
    : suite_(std::move(suite)),
      classifier_(std::move(classifier)),
      classifier_columns_(std::move(classifier_columns)) {}

template <typename EvalRow>
Result<FeaturizedBatch> FeaturePipeline::RunImpl(
    size_t n, const EvalRow& eval_row) const {
  if (classifier_ == nullptr) {
    return Status::FailedPrecondition("feature pipeline has no classifier");
  }
  const size_t num_metrics = suite_.num_metrics();
  if (num_metrics == 0) {
    return Status::FailedPrecondition("feature pipeline has an empty suite");
  }
  for (size_t c : classifier_columns_) {
    if (c >= num_metrics) {
      return Status::InvalidArgument("classifier column out of range");
    }
  }

  FeaturizedBatch batch;
  batch.features = FeatureMatrix(n, num_metrics);
  batch.features.column_names = suite_.MetricNames();
  batch.probs.resize(n);
  const bool gather = !classifier_columns_.empty();
  const size_t classifier_width =
      gather ? classifier_columns_.size() : num_metrics;
  ParallelForRange(n, [&](size_t begin, size_t end) {
    // Per-thread scratch: kernel buffers for the prepared metric path plus
    // the classifier's gathered input columns; metric values land directly
    // in the output matrix.
    MetricScratch scratch;
    std::vector<double> gathered(gather ? classifier_width : 0);
    for (size_t i = begin; i < end; ++i) {
      double* row = batch.features.mutable_row(i);
      eval_row(i, row, &scratch);
      const double* classifier_input = row;
      if (gather) {
        for (size_t k = 0; k < classifier_width; ++k) {
          gathered[k] = row[classifier_columns_[k]];
        }
        classifier_input = gathered.data();
      }
      batch.probs[i] =
          classifier_->PredictProba(classifier_input, classifier_width);
    }
  });
  return batch;
}

Result<FeaturizedBatch> FeaturePipeline::Run(
    const Table& left, const Table& right,
    const std::vector<RecordPair>& pairs) const {
  for (const RecordPair& pair : pairs) {
    if (pair.left >= left.num_records() || pair.right >= right.num_records()) {
      return Status::OutOfRange("record pair index out of table range");
    }
  }
  return RunImpl(pairs.size(),
                 [&](size_t i, double* row, MetricScratch* /*scratch*/) {
                   suite_.EvaluatePairInto(left.record(pairs[i].left),
                                           right.record(pairs[i].right), row);
                 });
}

Result<FeaturizedBatch> FeaturePipeline::RunProbe(
    const Record& probe, const Table& table,
    const std::vector<size_t>& candidates) const {
  if (probe.values.size() != table.schema().num_attributes()) {
    return Status::InvalidArgument(
        "probe record width does not match the table schema");
  }
  for (size_t c : candidates) {
    if (c >= table.num_records()) {
      return Status::OutOfRange("candidate record index out of table range");
    }
  }
  return RunImpl(candidates.size(),
                 [&](size_t i, double* row, MetricScratch* /*scratch*/) {
                   suite_.EvaluatePairInto(probe, table.record(candidates[i]),
                                           row);
                 });
}

Result<FeaturizedBatch> FeaturePipeline::RunPrepared(
    const PreparedTable& left, const PreparedTable& right,
    const std::vector<RecordPair>& pairs) const {
  for (const RecordPair& pair : pairs) {
    if (pair.left >= left.size() || pair.right >= right.size()) {
      return Status::OutOfRange("record pair index out of table range");
    }
  }
  return RunImpl(pairs.size(),
                 [&](size_t i, double* row, MetricScratch* scratch) {
                   suite_.EvaluatePairPreparedInto(left.record(pairs[i].left),
                                                   right.record(pairs[i].right),
                                                   scratch, row);
                 });
}

Result<FeaturizedBatch> FeaturePipeline::RunProbePrepared(
    const PreparedRecord& probe, const PreparedTable& table,
    const std::vector<size_t>& candidates) const {
  if (probe.values.size() != suite_.schema().num_attributes()) {
    return Status::InvalidArgument(
        "probe record width does not match the pipeline schema");
  }
  for (size_t c : candidates) {
    if (c >= table.size()) {
      return Status::OutOfRange("candidate record index out of table range");
    }
  }
  return RunImpl(candidates.size(),
                 [&](size_t i, double* row, MetricScratch* scratch) {
                   suite_.EvaluatePairPreparedInto(
                       probe, table.record(candidates[i]), scratch, row);
                 });
}

}  // namespace learnrisk
