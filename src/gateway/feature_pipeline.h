// Copyright 2026 The LearnRisk Authors
// Inline featurization — the middle layer of the request gateway. Evaluates
// the fitted MetricSuite and the frozen classifier on record pairs in one
// chunk-parallel pass: each thread writes metric rows straight into the
// output FeatureMatrix and gathers the classifier's input columns into a
// reused per-thread scratch buffer, so the hot loop allocates no per-pair
// vectors.
//
// Two equivalent paths exist. Run/RunProbe evaluate raw records (the
// reference path: every record-level artifact re-derived per pair).
// RunPrepared/RunProbePrepared evaluate PreparedRecords — per-record caches
// built once via PrepareRecord/PreparedTable — through the suite's prepared
// kernels with per-thread MetricScratch. Both paths are bit-identical to the
// offline ComputeFeatures + PredictProbaAll stages over the same pairs
// (enforced by tests/prepared_parity_test.cc); the prepared path is what the
// gateway serves from, since blocking emits each record in many pairs.

#ifndef LEARNRISK_GATEWAY_FEATURE_PIPELINE_H_
#define LEARNRISK_GATEWAY_FEATURE_PIPELINE_H_

#include <memory>
#include <vector>

#include "classifier/classifier.h"
#include "common/status.h"
#include "data/table.h"
#include "data/workload.h"
#include "metrics/metric_suite.h"
#include "metrics/prepared_record.h"

namespace learnrisk {

class SideStore;
class ShardedSideView;

/// \brief Featurization output for one batch of pairs: the metric rows (the
/// rule-evaluation input) plus the classifier's equivalence probabilities —
/// exactly what a ScoreRequest consumes.
struct FeaturizedBatch {
  FeatureMatrix features;
  std::vector<double> probs;
  /// Wall time of the two internal passes (metric evaluation vs classifier
  /// inference) — the gateway splits its featurize/classify stage telemetry
  /// on these without re-timing the pipeline.
  double featurize_ms = 0.0;
  double classify_ms = 0.0;
};

/// \brief A frozen (suite, classifier) pair evaluating record pairs.
///
/// The pipeline owns a copy of the fitted metric suite and shares ownership
/// of the classifier; both are immutable here, so every Run* method is safe
/// to call concurrently from many request threads.
class FeaturePipeline {
 public:
  FeaturePipeline() = default;

  /// \brief `classifier_columns` lists the metric columns the classifier was
  /// trained on (empty = all columns). The suite must already be fitted.
  FeaturePipeline(MetricSuite suite,
                  std::shared_ptr<const BinaryClassifier> classifier,
                  std::vector<size_t> classifier_columns = {});

  const MetricSuite& suite() const { return suite_; }
  const std::vector<size_t>& classifier_columns() const {
    return classifier_columns_;
  }

  /// \brief Names of the suite's metric columns, cached at construction —
  /// the gateway labels its per-column drift instruments with these without
  /// re-deriving them from the specs per registration or snapshot.
  const std::vector<std::string>& metric_names() const {
    return metric_names_;
  }

  /// \brief Metric rows + classifier probabilities for record pairs indexing
  /// into the two tables — the raw reference path (chunk-parallel, per-pair
  /// re-derivation of record-level artifacts).
  Result<FeaturizedBatch> Run(const Table& left, const Table& right,
                              const std::vector<RecordPair>& pairs) const;

  /// \brief Same pass for one raw probe record against candidate records of
  /// a table (the online single-record path). The probe takes the pair's
  /// left slot.
  Result<FeaturizedBatch> RunProbe(const Record& probe, const Table& table,
                                   const std::vector<size_t>& candidates)
      const;

  /// \brief Prepares one record under the pipeline's suite (for probes and
  /// incremental cache maintenance).
  PreparedRecord Prepare(const Record& record) const {
    return suite_.PrepareRecord(record);
  }

  /// \brief Prepared fast path of Run: pairs index into two PreparedTables
  /// built (and kept index-aligned) from the same tables under this
  /// pipeline's suite. Bit-identical output to Run on the source tables.
  Result<FeaturizedBatch> RunPrepared(const PreparedTable& left,
                                      const PreparedTable& right,
                                      const std::vector<RecordPair>& pairs)
      const;

  /// \brief Prepared fast path of RunProbe: one prepared probe against
  /// prepared candidates. Bit-identical output to RunProbe.
  Result<FeaturizedBatch> RunProbePrepared(
      const PreparedRecord& probe, const PreparedTable& table,
      const std::vector<size_t>& candidates) const;

  /// \brief Segment-store overloads — the gateway's snapshot path. Pairs
  /// (or candidates) index into SideStores whose prepared entries were
  /// built under this pipeline's suite; output is bit-identical to the
  /// PreparedTable overloads and to the raw reference path.
  Result<FeaturizedBatch> RunPrepared(const SideStore& left,
                                      const SideStore& right,
                                      const std::vector<RecordPair>& pairs)
      const;
  Result<FeaturizedBatch> RunProbePrepared(
      const PreparedRecord& probe, const SideStore& table,
      const std::vector<size_t>& candidates) const;

  /// \brief Sharded-view overloads — pairs (or candidates) carry *global*
  /// record ids over a ShardedSideView of per-shard stores (see
  /// gateway/shard_merge.h). Bit-identical to the single-store overloads on
  /// the equivalent unsharded stores.
  Result<FeaturizedBatch> RunPrepared(const ShardedSideView& left,
                                      const ShardedSideView& right,
                                      const std::vector<RecordPair>& pairs)
      const;
  Result<FeaturizedBatch> RunProbePrepared(
      const PreparedRecord& probe, const ShardedSideView& table,
      const std::vector<size_t>& candidates) const;

  /// \brief Caps the worker threads of each internal pass: 0 (default) uses
  /// the shared process pool's full concurrency, 1 evaluates serially on the
  /// calling thread. The shared pool runs one parallel loop at a time, so
  /// gateways serving many concurrent requests set 1 to let requests scale
  /// across threads instead of queueing on the pool (bit-identical output
  /// either way).
  void set_parallelism(size_t parallelism) { parallelism_ = parallelism; }
  size_t parallelism() const { return parallelism_; }

 private:
  /// \brief Shared core: featurize row i via `eval_row(i, out_row, scratch)`,
  /// then gather classifier columns and predict.
  template <typename EvalRow>
  Result<FeaturizedBatch> RunImpl(size_t n, const EvalRow& eval_row) const;

  /// \brief Shared bodies of the prepared overloads, over any store
  /// exposing size() + prepared rows (PreparedTable or SideStore); stores
  /// whose rows are contiguous evaluate through direct pointers.
  template <typename LeftStore, typename RightStore>
  Result<FeaturizedBatch> RunPreparedImpl(
      const LeftStore& left, const RightStore& right,
      const std::vector<RecordPair>& pairs) const;
  template <typename Store>
  Result<FeaturizedBatch> RunProbePreparedImpl(
      const PreparedRecord& probe, const Store& table,
      const std::vector<size_t>& candidates) const;

  MetricSuite suite_;
  std::shared_ptr<const BinaryClassifier> classifier_;
  std::vector<size_t> classifier_columns_;
  std::vector<std::string> metric_names_;  ///< suite_.MetricNames(), cached
  size_t parallelism_ = 0;                 ///< see set_parallelism()
};

}  // namespace learnrisk

#endif  // LEARNRISK_GATEWAY_FEATURE_PIPELINE_H_
