// Copyright 2026 The LearnRisk Authors
// Inline featurization — the middle layer of the request gateway. Evaluates
// the fitted MetricSuite and the frozen classifier on raw record pairs in
// one chunk-parallel pass: each thread writes metric rows straight into the
// output FeatureMatrix and gathers the classifier's input columns into a
// reused per-thread scratch buffer, so the hot loop allocates no per-pair
// vectors. Values are bit-identical to the offline ComputeFeatures +
// PredictProbaAll stages over the same pairs.

#ifndef LEARNRISK_GATEWAY_FEATURE_PIPELINE_H_
#define LEARNRISK_GATEWAY_FEATURE_PIPELINE_H_

#include <memory>
#include <vector>

#include "classifier/classifier.h"
#include "common/status.h"
#include "data/table.h"
#include "data/workload.h"
#include "metrics/metric_suite.h"

namespace learnrisk {

/// \brief Featurization output for one batch of raw pairs: the metric rows
/// (the rule-evaluation input) plus the classifier's equivalence
/// probabilities — exactly what a ScoreRequest consumes.
struct FeaturizedBatch {
  FeatureMatrix features;
  std::vector<double> probs;
};

/// \brief A frozen (suite, classifier) pair evaluating raw record pairs.
///
/// The pipeline owns a copy of the fitted metric suite and shares ownership
/// of the classifier; both are immutable here, so Run is safe to call
/// concurrently from many request threads.
class FeaturePipeline {
 public:
  FeaturePipeline() = default;

  /// \brief `classifier_columns` lists the metric columns the classifier was
  /// trained on (empty = all columns). The suite must already be fitted.
  FeaturePipeline(MetricSuite suite,
                  std::shared_ptr<const BinaryClassifier> classifier,
                  std::vector<size_t> classifier_columns = {});

  const MetricSuite& suite() const { return suite_; }
  const std::vector<size_t>& classifier_columns() const {
    return classifier_columns_;
  }

  /// \brief Metric rows + classifier probabilities for record pairs indexing
  /// into the two tables (chunk-parallel, per-thread scratch).
  Result<FeaturizedBatch> Run(const Table& left, const Table& right,
                              const std::vector<RecordPair>& pairs) const;

  /// \brief Same pass for one raw probe record against candidate records of
  /// a table (the online single-record path). The probe takes the pair's
  /// left slot.
  Result<FeaturizedBatch> RunProbe(const Record& probe, const Table& table,
                                   const std::vector<size_t>& candidates)
      const;

 private:
  /// \brief Shared core: featurize pair i via `record_at(i)` = (left record,
  /// right record).
  template <typename PairAt>
  Result<FeaturizedBatch> RunImpl(size_t n, const PairAt& pair_at) const;

  MetricSuite suite_;
  std::shared_ptr<const BinaryClassifier> classifier_;
  std::vector<size_t> classifier_columns_;
};

}  // namespace learnrisk

#endif  // LEARNRISK_GATEWAY_FEATURE_PIPELINE_H_
