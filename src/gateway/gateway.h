// Copyright 2026 The LearnRisk Authors
// Raw-record request gateway: the first end-to-end entry point of the
// serving stack. A namespace bundles a workload's tables, an incremental
// BlockingIndex, and a FeaturePipeline (fitted metric suite + frozen
// classifier); the embedded ModelRegistry maps the same namespace to its
// ServingEngine. Resolve then runs blocking -> metrics -> classifier -> risk
// in one call, turning two raw tables into risk-ranked candidate pairs —
// with per-stage wall-clock timing for observability — and every stage is
// bit-identical to running the offline TokenBlocking + MetricSuite +
// ServingEngine path by hand.

#ifndef LEARNRISK_GATEWAY_GATEWAY_H_
#define LEARNRISK_GATEWAY_GATEWAY_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "classifier/classifier.h"
#include "common/status.h"
#include "data/blocking.h"
#include "data/table.h"
#include "data/workload.h"
#include "gateway/blocking_index.h"
#include "gateway/feature_pipeline.h"
#include "gateway/model_registry.h"
#include "metrics/metric_suite.h"

namespace learnrisk {

/// \brief Everything a namespace needs to serve raw pairs: its tables, the
/// fitted metric suite, the frozen classifier, and the blocking parameters.
struct NamespaceSpec {
  std::shared_ptr<const Table> left;
  /// Null or equal to `left` selects dedup (single-table) semantics.
  std::shared_ptr<const Table> right;
  /// Must already be fitted (Fit on the namespace's workload).
  MetricSuite suite;
  std::shared_ptr<const BinaryClassifier> classifier;
  /// Metric columns the classifier was trained on (empty = all).
  std::vector<size_t> classifier_columns;
  BlockingConfig blocking;
};

/// \brief One Resolve call: explicit candidate pairs, or — with `block_all`
/// — every candidate the namespace's blocking index currently implies.
struct ResolveRequest {
  std::vector<RecordPair> pairs;
  bool block_all = false;
  /// When > 0, responses carry top-k explanations per pair.
  size_t explain_top_k = 0;
};

/// \brief Wall-clock breakdown of one gateway request.
struct StageTiming {
  double blocking_ms = 0.0;
  double featurize_ms = 0.0;
  double score_ms = 0.0;
  double total_ms() const { return blocking_ms + featurize_ms + score_ms; }
};

/// \brief Scored candidate pairs plus the serving metadata.
struct ResolveResponse {
  /// The pairs that were scored (request order, or the blocker's
  /// deterministic order under block_all); scores.risk[i] belongs to
  /// pairs[i].
  std::vector<RecordPair> pairs;
  ScoreResponse scores;
  StageTiming timing;
};

/// \brief Result of probing one raw record: the blocking candidates on the
/// opposite side and their scores against the probe.
struct ProbeResponse {
  std::vector<size_t> candidates;
  ScoreResponse scores;
  StageTiming timing;
};

/// \brief Gateway configuration (the embedded registry's options).
struct GatewayOptions {
  ModelRegistryOptions registry;
};

/// \brief Multi-tenant raw-record scoring front end.
///
/// Thread safety / locking contract:
///  - The gateway-level mutex `mu_` guards only the shape of the namespace
///    map (registration and lookup); it is never held while a request runs.
///  - Each namespace has its own shared_mutex over the mutable per-namespace
///    state: the tables, the blocking index, and the prepared-record caches.
///    Resolve / ResolveRecord / NumRecords take it shared (many concurrent
///    readers); AddRecord takes it exclusive. The FeaturePipeline itself is
///    immutable after registration and needs no locking.
///  - Model publishes bypass namespace locks entirely: they go through the
///    registry's hot-swap path, so Resolve traffic keeps flowing on the
///    snapshot it started with while models and records change underneath.
///
/// Featurization serves from per-record PreparedRecord caches (built at
/// registration, extended by AddRecord under the exclusive lock), so the
/// per-pair hot loop never re-tokenizes or re-normalizes a record; outputs
/// stay bit-identical to the raw offline path.
class Gateway {
 public:
  explicit Gateway(GatewayOptions options = {});

  /// \brief Installs a namespace's tables, blocking index and
  /// prepared-record caches (both built here from the tables) and its
  /// feature pipeline. Fails on invalid specs or duplicate names.
  /// Publishing a model is a separate step (Publish / registry()).
  Status RegisterNamespace(const std::string& ns, NamespaceSpec spec);

  bool HasNamespace(const std::string& ns) const;
  std::vector<std::string> Namespaces() const;

  /// \brief Publishes a risk model for the namespace (hot-swap; returns the
  /// namespace's new version). The namespace must be registered. Never
  /// blocks in-flight Resolve calls: they finish on the snapshot they
  /// loaded at score time.
  Result<uint64_t> Publish(const std::string& ns, RiskModel model);

  /// \brief The embedded registry (save/load of all models, LRU stats).
  ModelRegistry& registry() { return registry_; }
  const ModelRegistry& registry() const { return registry_; }

  /// \brief Scores record pairs end-to-end: candidate generation (or the
  /// request's explicit pairs), prepared-cache featurization, risk scoring.
  /// NotFound for unknown namespaces, InvalidArgument for empty or
  /// ambiguous requests, FailedPrecondition before the first Publish.
  /// Holds the namespace lock shared for the blocking + featurize stages,
  /// so it runs concurrently with other Resolve calls and with publishes,
  /// but mutually excludes AddRecord.
  Result<ResolveResponse> Resolve(const std::string& ns,
                                  const ResolveRequest& request);

  /// \brief Online single-record path: blocks a raw probe record against
  /// the namespace's opposite side and scores the resulting candidates.
  /// The probe is prepared once per call; candidates come from the
  /// namespace's prepared cache. Same locking as Resolve (shared).
  Result<ProbeResponse> ResolveRecord(const std::string& ns,
                                      const Record& probe,
                                      size_t explain_top_k = 0);

  /// \brief Appends a record to one side of the namespace — table, blocking
  /// index, and prepared-record cache stay index-aligned — making it visible
  /// to subsequent Resolve / ResolveRecord calls. Takes the namespace lock
  /// exclusively: concurrent Resolve calls either see the namespace fully
  /// without the record or fully with it, never a partial update.
  /// `entity_id` is optional ground truth (-1 = unknown).
  Status AddRecord(const std::string& ns, BlockingSide side, Record record,
                   int64_t entity_id = -1);

  /// \brief Current record count of one side of a namespace.
  Result<size_t> NumRecords(const std::string& ns, BlockingSide side) const;

 private:
  struct NamespaceState {
    /// Guards tables, index, and prepared caches; the pipeline is immutable
    /// after registration and read lock-free.
    mutable std::shared_mutex mu;
    bool dedup = false;
    Table left;
    Table right;  ///< unused when dedup
    BlockingIndex index;
    FeaturePipeline pipeline;
    /// Prepared-record caches, index-aligned with the tables: built at
    /// registration, appended by AddRecord under the exclusive lock.
    PreparedTable left_prepared;
    PreparedTable right_prepared;  ///< unused when dedup

    const Table& right_table() const { return dedup ? left : right; }
    const PreparedTable& right_prepared_table() const {
      return dedup ? left_prepared : right_prepared;
    }
  };

  Result<std::shared_ptr<NamespaceState>> State(const std::string& ns) const;
  /// \brief Featurized batch -> engine score, shared by Resolve and
  /// ResolveRecord. Fills scores + the featurize/score timings.
  Status ScoreBatch(const std::string& ns, const FeaturizedBatch& batch,
                    size_t explain_top_k, ScoreResponse* scores,
                    StageTiming* timing);

  GatewayOptions options_;
  ModelRegistry registry_;
  mutable std::mutex mu_;  ///< guards namespaces_ map shape only
  std::map<std::string, std::shared_ptr<NamespaceState>> namespaces_;
};

}  // namespace learnrisk

#endif  // LEARNRISK_GATEWAY_GATEWAY_H_
