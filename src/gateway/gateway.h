// Copyright 2026 The LearnRisk Authors
// Raw-record request gateway: the first end-to-end entry point of the
// serving stack. A namespace bundles a workload's tables, an incremental
// BlockingIndex, and a FeaturePipeline (fitted metric suite + frozen
// classifier); the embedded ModelRegistry maps the same namespace to its
// ServingEngine. Resolve then runs blocking -> metrics -> classifier -> risk
// in one call, turning two raw tables into risk-ranked candidate pairs —
// with per-stage wall-clock timing for observability — and every stage is
// bit-identical to running the offline TokenBlocking + MetricSuite +
// ServingEngine path by hand.

#ifndef LEARNRISK_GATEWAY_GATEWAY_H_
#define LEARNRISK_GATEWAY_GATEWAY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "classifier/classifier.h"
#include "common/status.h"
#include "data/blocking.h"
#include "data/table.h"
#include "data/workload.h"
#include "gateway/blocking_index.h"
#include "gateway/durability.h"
#include "gateway/feature_pipeline.h"
#include "gateway/model_registry.h"
#include "gateway/namespace_segments.h"
#include "metrics/metric_suite.h"
#include "obs/registry.h"

namespace learnrisk {

/// \brief Everything a namespace needs to serve raw pairs: its tables, the
/// fitted metric suite, the frozen classifier, and the blocking parameters.
struct NamespaceSpec {
  std::shared_ptr<const Table> left;
  /// Null or equal to `left` selects dedup (single-table) semantics.
  std::shared_ptr<const Table> right;
  /// Must already be fitted (Fit on the namespace's workload).
  MetricSuite suite;
  std::shared_ptr<const BinaryClassifier> classifier;
  /// Metric columns the classifier was trained on (empty = all).
  std::vector<size_t> classifier_columns;
  BlockingConfig blocking;
};

/// \brief One Resolve call: explicit candidate pairs, or — with `block_all`
/// — every candidate the namespace's blocking index currently implies.
struct ResolveRequest {
  std::vector<RecordPair> pairs;
  bool block_all = false;
  /// When > 0, responses carry top-k explanations per pair.
  size_t explain_top_k = 0;
};

/// \brief Wall-clock breakdown of one gateway request. Read paths (Resolve /
/// ResolveRecord) fill the first four stages; AddRecord fills the durability
/// stages. Each stage is measured once and that same measurement also feeds
/// the namespace's stage-latency histograms (see docs/OBSERVABILITY.md), so
/// per-request timings and aggregate telemetry always agree on boundaries.
struct StageTiming {
  double blocking_ms = 0.0;
  double featurize_ms = 0.0;   ///< metric evaluation (prepared kernels)
  double classify_ms = 0.0;    ///< classifier inference over the metric rows
  double score_ms = 0.0;       ///< risk scoring (rule activation + kernel)
  double wal_append_ms = 0.0;  ///< AddRecord: durable WAL append + flush
  double publish_ms = 0.0;     ///< AddRecord: snapshot derivation + swap
  double total_ms() const {
    return blocking_ms + featurize_ms + classify_ms + score_ms +
           wal_append_ms + publish_ms;
  }
};

/// \brief Scored candidate pairs plus the serving metadata.
struct ResolveResponse {
  /// The pairs that were scored (request order, or the blocker's
  /// deterministic order under block_all); scores.risk[i] belongs to
  /// pairs[i].
  std::vector<RecordPair> pairs;
  ScoreResponse scores;
  StageTiming timing;
};

/// \brief Result of probing one raw record: the blocking candidates on the
/// opposite side and their scores against the probe.
struct ProbeResponse {
  std::vector<size_t> candidates;
  ScoreResponse scores;
  StageTiming timing;
};

/// \brief Gateway configuration (the embedded registry's options and the
/// per-namespace durability settings).
struct GatewayOptions {
  ModelRegistryOptions registry;
  /// When `durability.dir` is set, every namespace is durable: registration
  /// writes checkpoint 1, AddRecord write-ahead-logs each record before
  /// publishing it, and RecoverNamespace rebuilds namespaces after a
  /// restart. See docs/DURABILITY.md.
  DurabilityOptions durability;
  /// Runtime telemetry (docs/OBSERVABILITY.md): per-namespace counters,
  /// per-stage latency histograms, and risk-score distributions, exposed
  /// through MetricsSnapshot(). Recording is lock-free (a few relaxed
  /// atomics per event; measured overhead is in BENCH_gateway.json's
  /// `observability` block). Off = no instruments are created and every
  /// recording site is skipped via a null check.
  bool enable_metrics = true;
};

/// \brief Everything RecoverNamespace needs that is *not* in the durable
/// state: the record data, entity ids, dedup flag, and served model version
/// come from disk; the fitted metric suite, classifier, and blocking
/// parameters are code-side configuration the manifest cannot capture, so
/// the caller re-supplies them (they must match the original registration —
/// the schema is fingerprint-checked against the manifest).
struct RecoverNamespaceSpec {
  Schema schema;
  /// Must already be fitted, like NamespaceSpec::suite.
  MetricSuite suite;
  std::shared_ptr<const BinaryClassifier> classifier;
  std::vector<size_t> classifier_columns;
  BlockingConfig blocking;
};

/// \brief Multi-tenant raw-record scoring front end.
///
/// Thread safety / locking contract (full protocol: docs/CONCURRENCY.md):
///  - The gateway-level mutex `mu_` guards only the shape of the namespace
///    map (registration and lookup); it is never held while a request runs.
///  - Each namespace's mutable state is one immutable NamespaceSnapshot
///    (segmented record/prepared stores + blocking index) behind an
///    atomically-swapped shared_ptr. Resolve / ResolveRecord / NumRecords
///    load the pointer once (acquire) and serve the whole request from that
///    frozen snapshot — readers take NO per-namespace lock and are never
///    blocked, delayed, or torn by writers.
///  - AddRecord is the only namespace writer: it serializes with other
///    writers on the namespace's `writer_mu`, derives a successor snapshot
///    that shares every existing segment plus a new single-record tail, and
///    publishes it with one pointer swap (release). Requests in flight
///    finish on the snapshot they loaded; superseded snapshots are freed by
///    whichever reader or writer drops the last reference.
///  - The FeaturePipeline is immutable after registration and read
///    lock-free. Model publishes go through the registry's hot-swap path
///    and never touch namespace snapshots.
///
/// Featurization serves from per-record PreparedRecord caches owned by the
/// snapshot's segments (built at registration, extended by AddRecord), so
/// the per-pair hot loop never re-tokenizes or re-normalizes a record;
/// outputs stay bit-identical to the raw offline path.
class Gateway {
 public:
  explicit Gateway(GatewayOptions options = {});

  /// \brief Installs a namespace: builds its base snapshot (segmented
  /// record + prepared stores and the blocking index, all copied out of the
  /// spec's tables) and freezes its feature pipeline. Fails on invalid
  /// specs or duplicate names. Publishing a model is a separate step
  /// (Publish / registry()).
  Status RegisterNamespace(const std::string& ns, NamespaceSpec spec);

  bool HasNamespace(const std::string& ns) const;
  std::vector<std::string> Namespaces() const;

  /// \brief Publishes a risk model for the namespace (hot-swap; returns the
  /// namespace's new version). The namespace must be registered. Never
  /// blocks in-flight Resolve calls: they finish on the snapshot they
  /// loaded at score time.
  Result<uint64_t> Publish(const std::string& ns, RiskModel model);

  /// \brief The embedded registry (save/load of all models, LRU stats).
  ModelRegistry& registry() { return registry_; }
  const ModelRegistry& registry() const { return registry_; }

  /// \brief Scores record pairs end-to-end: candidate generation (or the
  /// request's explicit pairs), prepared-cache featurization, risk scoring.
  /// NotFound for unknown namespaces, InvalidArgument for empty or
  /// ambiguous requests, FailedPrecondition before the first Publish.
  /// Lock-free with respect to the namespace: the whole request runs on one
  /// atomically-loaded snapshot, concurrent with other Resolve calls, with
  /// publishes, and with AddRecord writers.
  Result<ResolveResponse> Resolve(const std::string& ns,
                                  const ResolveRequest& request);

  /// \brief Online single-record path: blocks a raw probe record against
  /// the namespace's opposite side and scores the resulting candidates —
  /// exactly the candidates batch blocking would emit if the probe were
  /// appended (see BlockingIndex::Candidates). The probe is prepared once
  /// per call; candidates come from the snapshot's prepared segments. Same
  /// snapshot semantics as Resolve (no namespace lock).
  Result<ProbeResponse> ResolveRecord(const std::string& ns,
                                      const Record& probe,
                                      size_t explain_top_k = 0);

  /// \brief Appends a record to one side of the namespace — record store,
  /// blocking index, and prepared cache stay index-aligned — making it
  /// visible to subsequent Resolve / ResolveRecord calls. Serializes with
  /// other AddRecord calls on the namespace's writer mutex, never blocks
  /// readers: concurrent Resolve calls see the namespace fully without the
  /// record or fully with it (one atomic snapshot swap), never a partial
  /// update. `entity_id` is optional ground truth (-1 = unknown).
  /// `timing` (optional) receives the wal_append/publish stage breakdown of
  /// this append — zero elsewhere, and wal_append_ms stays zero for
  /// non-durable namespaces.
  Status AddRecord(const std::string& ns, BlockingSide side, Record record,
                   int64_t entity_id = -1, StageTiming* timing = nullptr);

  /// \brief Current record count of one side of a namespace.
  Result<size_t> NumRecords(const std::string& ns, BlockingSide side) const;

  /// \brief Checkpoints a durable namespace now: materializes the current
  /// snapshot into immutable segment files, saves the served model at its
  /// exact version, starts a fresh WAL, and commits with one atomic
  /// manifest swap (full protocol: docs/DURABILITY.md). Serializes with
  /// AddRecord on the namespace's writer mutex; readers are unaffected.
  /// FailedPrecondition when durability is off.
  Status Checkpoint(const std::string& ns);

  /// \brief Rebuilds a namespace from its durable state after a restart:
  /// loads the committed checkpoint, replays the WAL tail (torn entries
  /// checksum-detected and truncated), rebuilds the snapshot — bit-identical
  /// outputs to a gateway that never crashed — and re-publishes the
  /// checkpointed model at its recorded version. The namespace continues
  /// accepting AddRecord against the recovered WAL. NotFound when no
  /// durable state exists; IOError/InvalidArgument (with the offending
  /// file named) on corrupt or missing state.
  Status RecoverNamespace(const std::string& ns, RecoverNamespaceSpec spec);

  /// \brief WAL entries appended since the namespace's last checkpoint
  /// (recovery replay counts toward it). FailedPrecondition when durability
  /// is off.
  Result<size_t> WalEntriesSinceCheckpoint(const std::string& ns);

  /// \brief Point-in-time snapshot of every runtime metric this gateway owns
  /// — request/stage latency histograms, risk-score distributions, WAL and
  /// checkpoint counters, registry LRU stats, serving-engine counters, and
  /// the snapshot-time gauges (record counts, resident engines). Feed it to
  /// ExportJson / ExportPrometheusText (obs/export.h). Safe to call
  /// concurrently with serving traffic: instruments are lock-free and the
  /// snapshot never tears an instrument. Empty when
  /// GatewayOptions::enable_metrics is false. Metric catalog:
  /// docs/OBSERVABILITY.md.
  learnrisk::MetricsSnapshot MetricsSnapshot() const;

 private:
  /// \brief One immutable view of a namespace's data. All heavy members are
  /// segment lists sharing storage with neighboring snapshots; copying a
  /// snapshot (the writer's first step) is a few shared_ptr vector copies.
  struct NamespaceSnapshot {
    SideStore left;
    SideStore right;  ///< unused when dedup
    BlockingIndex index;
  };

  /// \brief Per-namespace instrument bundle, cached as raw pointers so the
  /// hot paths record without touching the MetricRegistry. All null when
  /// GatewayOptions::enable_metrics is false — every recording site checks.
  /// Instruments are owned by metric_registry_ and outlive the namespace.
  struct NamespaceMetrics {
    ShardedCounter* resolve_requests = nullptr;        ///< successful Resolves
    ShardedCounter* resolve_record_requests = nullptr; ///< successful probes
    ShardedCounter* pairs_scored = nullptr;
    ShardedCounter* records_added = nullptr;
    ShardedCounter* recoveries = nullptr;
    ShardedCounter* recovered_wal_entries = nullptr;
    ShardedCounter* recovered_wal_bytes_discarded = nullptr;
    /// Request latency (includes failed requests; counters count successes).
    LatencyHistogram* resolve_latency = nullptr;
    LatencyHistogram* resolve_record_latency = nullptr;
    /// Stage latencies — the histogram twins of StageTiming's fields.
    LatencyHistogram* stage_block = nullptr;
    LatencyHistogram* stage_featurize = nullptr;
    LatencyHistogram* stage_classify = nullptr;
    LatencyHistogram* stage_risk = nullptr;
    LatencyHistogram* stage_wal_append = nullptr;
    LatencyHistogram* stage_publish = nullptr;
    LatencyHistogram* checkpoint_latency = nullptr;
    LatencyHistogram* recover_latency = nullptr;
    ValueHistogram* risk_scores = nullptr;  ///< served risk distribution
    /// Volume counters recorded inside NamespaceLog (bytes, frames, fsyncs).
    DurabilityMetrics durability;
  };

  struct NamespaceState {
    bool dedup = false;
    Schema schema;
    /// Immutable after registration; read lock-free.
    FeaturePipeline pipeline;
    /// Serializes AddRecord writers; readers never touch it.
    std::mutex writer_mu;
    /// Current snapshot; accessed only via std::atomic_load/atomic_store
    /// (acquire/release). Never mutated in place.
    std::shared_ptr<const NamespaceSnapshot> snapshot;
    /// Durable WAL + checkpoint state; null when durability is off. Guarded
    /// by writer_mu like every other write-side structure.
    std::unique_ptr<NamespaceLog> log;
    /// Immutable after registration, like `pipeline`; read lock-free.
    NamespaceMetrics metrics;

    const SideStore& right_store(const NamespaceSnapshot& snap) const {
      return dedup ? snap.left : snap.right;
    }
  };

  Result<std::shared_ptr<NamespaceState>> State(const std::string& ns) const;
  static std::shared_ptr<const NamespaceSnapshot> LoadSnapshot(
      const NamespaceState& state);
  /// \brief Featurized batch -> engine score, shared by Resolve and
  /// ResolveRecord. Fills scores + the risk-stage timing, and records the
  /// stage latency / risk-score distribution into `metrics`.
  Status ScoreBatch(const std::string& ns, const NamespaceMetrics& metrics,
                    const FeaturizedBatch& batch, size_t explain_top_k,
                    ScoreResponse* scores, StageTiming* timing);
  /// \brief Checkpoint body; caller holds the namespace's writer_mu and has
  /// verified s.log is non-null.
  Status CheckpointLocked(const std::string& ns, NamespaceState& s);
  /// \brief Get-or-creates the namespace's instrument bundle in
  /// metric_registry_. Only called when enable_metrics is on.
  NamespaceMetrics CreateNamespaceMetrics(const std::string& ns);
  /// \brief Registers the namespace's snapshot-time gauges (record counts,
  /// WAL backlog); the callbacks hold a weak_ptr so they outlive nothing.
  void RegisterStateGauges(const std::string& ns,
                           const std::shared_ptr<NamespaceState>& state);

  GatewayOptions options_;
  /// Owns every instrument; declared before registry_ so the raw instrument
  /// pointers handed to the model registry (and through it to engines)
  /// outlive their users on destruction.
  MetricRegistry metric_registry_;
  ModelRegistry registry_;
  mutable std::mutex mu_;  ///< guards namespaces_ map shape only
  std::map<std::string, std::shared_ptr<NamespaceState>> namespaces_;
};

}  // namespace learnrisk

#endif  // LEARNRISK_GATEWAY_GATEWAY_H_
