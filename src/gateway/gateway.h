// Copyright 2026 The LearnRisk Authors
// Raw-record request gateway: the first end-to-end entry point of the
// serving stack. A namespace bundles a workload's tables, an incremental
// BlockingIndex, and a FeaturePipeline (fitted metric suite + frozen
// classifier); the embedded ModelRegistry maps the same namespace to its
// ServingEngine. Resolve then runs blocking -> metrics -> classifier -> risk
// in one call, turning two raw tables into risk-ranked candidate pairs —
// with per-stage wall-clock timing for observability — and every stage is
// bit-identical to running the offline TokenBlocking + MetricSuite +
// ServingEngine path by hand.

#ifndef LEARNRISK_GATEWAY_GATEWAY_H_
#define LEARNRISK_GATEWAY_GATEWAY_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "active/incremental_retrain.h"
#include "classifier/classifier.h"
#include "common/status.h"
#include "data/blocking.h"
#include "data/table.h"
#include "data/workload.h"
#include "gateway/blocking_index.h"
#include "gateway/durability.h"
#include "gateway/feature_pipeline.h"
#include "gateway/model_registry.h"
#include "gateway/namespace_segments.h"
#include "metrics/metric_suite.h"
#include "obs/drift.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "obs/trace_buffer.h"
#include "review/review_queue.h"

namespace learnrisk {

/// \brief Everything a namespace needs to serve raw pairs: its tables, the
/// fitted metric suite, the frozen classifier, and the blocking parameters.
struct NamespaceSpec {
  std::shared_ptr<const Table> left;
  /// Null or equal to `left` selects dedup (single-table) semantics.
  std::shared_ptr<const Table> right;
  /// Must already be fitted (Fit on the namespace's workload).
  MetricSuite suite;
  std::shared_ptr<const BinaryClassifier> classifier;
  /// Metric columns the classifier was trained on (empty = all).
  std::vector<size_t> classifier_columns;
  BlockingConfig blocking;
  /// Independent shards for this namespace (0 and 1 both mean unsharded).
  /// Sharding trades nothing for scale: writers serialize per-shard instead
  /// of per-namespace and results stay bit-identical to `shards = 1` at any
  /// value (docs/CONCURRENCY.md "Sharded namespaces").
  size_t shards = 1;
};

/// \brief One Resolve call: explicit candidate pairs, or — with `block_all`
/// — every candidate the namespace's blocking index currently implies.
struct ResolveRequest {
  std::vector<RecordPair> pairs;
  bool block_all = false;
  /// When > 0, responses carry top-k explanations per pair.
  size_t explain_top_k = 0;
};

/// \brief Wall-clock breakdown of one gateway request. Read paths (Resolve /
/// ResolveRecord) fill the first four stages; AddRecord fills the durability
/// stages. Each stage is measured once and that same measurement also feeds
/// the namespace's stage-latency histograms (see docs/OBSERVABILITY.md), so
/// per-request timings and aggregate telemetry always agree on boundaries.
struct StageTiming {
  /// Gateway-wide id of the request this breakdown belongs to (assigned
  /// monotonically across Resolve / ResolveRecord / AddRecord), so stage
  /// logs correlate with responses and captured RequestTraces.
  uint64_t request_id = 0;
  double blocking_ms = 0.0;
  /// Sharded namespaces only: of blocking_ms, the cross-shard merge phase
  /// (deterministic global ordering + equivalence tagging). A sub-span of
  /// blocking_ms — already included there, hence not summed into total_ms().
  /// Stays 0 for unsharded namespaces.
  double shard_merge_ms = 0.0;
  double featurize_ms = 0.0;   ///< metric evaluation (prepared kernels)
  double classify_ms = 0.0;    ///< classifier inference over the metric rows
  double score_ms = 0.0;       ///< risk scoring (rule activation + kernel)
  double review_ms = 0.0;      ///< review-queue enqueue (top-k offer + WAL)
  double wal_append_ms = 0.0;  ///< AddRecord: durable WAL append + flush
  double publish_ms = 0.0;     ///< AddRecord: snapshot derivation + swap
  double total_ms() const {
    return blocking_ms + featurize_ms + classify_ms + score_ms + review_ms +
           wal_append_ms + publish_ms;
  }
};

/// \brief Scored candidate pairs plus the serving metadata.
struct ResolveResponse {
  /// Gateway-assigned id of this request (same value as timing.request_id);
  /// quote it to find the request's captured trace in RecentTraces().
  uint64_t request_id = 0;
  /// The pairs that were scored (request order, or the blocker's
  /// deterministic order under block_all); scores.risk[i] belongs to
  /// pairs[i].
  std::vector<RecordPair> pairs;
  ScoreResponse scores;
  StageTiming timing;
};

/// \brief Result of probing one raw record: the blocking candidates on the
/// opposite side and their scores against the probe.
struct ProbeResponse {
  /// Gateway-assigned id of this request (same value as timing.request_id).
  uint64_t request_id = 0;
  std::vector<size_t> candidates;
  ScoreResponse scores;
  StageTiming timing;
};

/// \brief Request-trace capture configuration (docs/TRACING.md). Defaults
/// are cheap: 1-in-64 head sampling into a 256-slot ring, slow/high-risk
/// tail capture off until a threshold is set.
struct TraceOptions {
  /// Master switch. Off = no trace buffer, no per-request stage recording;
  /// request ids are still assigned and returned.
  bool enabled = true;
  /// Head sampling: capture every Nth request (by request id); 0 disables
  /// head sampling (tail capture below still applies).
  size_t sample_every = 64;
  /// Slots in the trace ring buffer (drop-oldest on overflow).
  size_t buffer_capacity = 256;
  /// Tail capture: requests slower than this are always captured; <= 0
  /// disables the latency trigger.
  double slow_request_ms = 0.0;
  /// Tail capture: requests whose max risk score reaches this are always
  /// captured; < 0 disables the risk trigger.
  double high_risk_threshold = -1.0;
  /// Riskiest pairs per captured trace that carry rule activations and the
  /// ScorerSnapshot explanation.
  size_t top_k = 3;
};

/// \brief Drift-monitoring configuration (docs/TRACING.md). Requires
/// enable_metrics: the live distributions are ValueHistogram instruments
/// and the PSI divergences are snapshot-time gauges.
struct DriftOptions {
  /// Master switch for the per-column feature histograms + PSI gauges.
  bool enabled = true;
  /// PSI at or above this counts a column as drifted in the
  /// learnrisk_gateway_drift_columns_alerted gauge (conventional 0.2).
  double alert_psi = 0.2;
};

/// \brief Gateway configuration (the embedded registry's options and the
/// per-namespace durability settings).
struct GatewayOptions {
  ModelRegistryOptions registry;
  /// When `durability.dir` is set, every namespace is durable: registration
  /// writes checkpoint 1, AddRecord write-ahead-logs each record before
  /// publishing it, and RecoverNamespace rebuilds namespaces after a
  /// restart. See docs/DURABILITY.md.
  DurabilityOptions durability;
  /// Runtime telemetry (docs/OBSERVABILITY.md): per-namespace counters,
  /// per-stage latency histograms, and risk-score distributions, exposed
  /// through MetricsSnapshot(). Recording is lock-free (a few relaxed
  /// atomics per event; measured overhead is in BENCH_gateway.json's
  /// `observability` block). Off = no instruments are created and every
  /// recording site is skipped via a null check.
  bool enable_metrics = true;
  /// Request-scoped trace capture (docs/TRACING.md). Independent of
  /// enable_metrics: traces capture even with aggregate metrics off.
  TraceOptions trace;
  /// Online drift monitoring vs the published model's training baseline
  /// (docs/TRACING.md); inert unless enable_metrics is also on.
  DriftOptions drift;
  /// Worker threads each request's featurize/classify passes may use: 0
  /// (default) = the shared process-wide pool, 1 = serial on the request
  /// thread. The shared pool runs one parallel loop at a time, so gateways
  /// serving many concurrent requests set 1 to scale across request threads
  /// instead of queueing on the pool. Bit-identical results either way.
  size_t request_parallelism = 0;
  /// Risk-driven review loop (docs/REVIEW.md): when enabled, every
  /// namespace gets a ReviewQueue and Resolve / ResolveRecord offer their
  /// top-k riskiest decisions to it; DrainReview / SubmitReviewLabel /
  /// RetrainFromReview close the label -> retrain -> publish loop. Durable
  /// namespaces WAL every review mutation and checkpoint the queue, so
  /// queued-but-unlabeled pairs and acked labels survive a restart.
  ReviewOptions review;
};

/// \brief RetrainFromReview configuration (docs/REVIEW.md).
struct ReviewRetrainOptions {
  /// Trainer hyperparameters for the incremental pass.
  IncrementalRetrainOptions retrain;
  /// FailedPrecondition below this many collected labels (a one-label
  /// "batch" cannot rank mislabeled vs correct).
  size_t min_labels = 2;
  /// Refresh the namespace's drift baseline from the label batch's feature
  /// rows and the retrained model's risk scores at publish time.
  bool refresh_drift_baseline = true;
  /// Checkpoint durable namespaces after the publish so the manifest
  /// records the new model version (no-op when durability is off).
  bool checkpoint = true;
};

/// \brief What one retrain-and-publish cycle produced.
struct ReviewRetrainResult {
  uint64_t model_version = 0;  ///< version the retrained model serves as
  size_t labels_used = 0;
  size_t mislabeled = 0;       ///< labels disagreeing with the machine label
  /// Per-epoch mean sampled rank loss — deterministic in the trainer seed,
  /// so reruns over identical labels are bit-identical.
  std::vector<double> loss_history;
  double train_ms = 0.0;    ///< incremental retrain wall time
  double publish_ms = 0.0;  ///< baseline build + hot-swap (+ checkpoint)
};

/// \brief Everything RecoverNamespace needs that is *not* in the durable
/// state: the record data, entity ids, dedup flag, and served model version
/// come from disk; the fitted metric suite, classifier, and blocking
/// parameters are code-side configuration the manifest cannot capture, so
/// the caller re-supplies them (they must match the original registration —
/// the schema is fingerprint-checked against the manifest).
struct RecoverNamespaceSpec {
  Schema schema;
  /// Must already be fitted, like NamespaceSpec::suite.
  MetricSuite suite;
  std::shared_ptr<const BinaryClassifier> classifier;
  std::vector<size_t> classifier_columns;
  BlockingConfig blocking;
};

/// \brief Multi-tenant raw-record scoring front end.
///
/// Thread safety / locking contract (full protocol: docs/CONCURRENCY.md):
///  - The gateway-level mutex `mu_` guards only the shape of the namespace
///    map (registration and lookup); it is never held while a request runs.
///  - Each namespace's mutable state is one immutable NamespaceSnapshot
///    (segmented record/prepared stores + blocking index) behind an
///    atomically-swapped shared_ptr. Resolve / ResolveRecord / NumRecords
///    load the pointer once (acquire) and serve the whole request from that
///    frozen snapshot — readers take NO per-namespace lock and are never
///    blocked, delayed, or torn by writers.
///  - AddRecord is the only namespace writer: it serializes with other
///    writers on the owning shard's `writer_mu`, derives a successor
///    snapshot that shares every existing segment plus a new single-record
///    tail, and publishes it with one pointer swap (release). Requests in
///    flight finish on the snapshot they loaded; superseded snapshots are
///    freed by whichever reader or writer drops the last reference.
///  - A namespace registered with NamespaceSpec::shards = S > 1 keeps S
///    independent shards (each its own segment stores, blocking index,
///    snapshot pointer, writer mutex, and — when durable — WAL/checkpoint
///    log). Readers pin every shard's snapshot and merge blocking
///    candidates deterministically (gateway/shard_merge.h), so responses
///    are bit-identical to the unsharded namespace at any S while writers
///    to different shards proceed concurrently.
///  - The FeaturePipeline is immutable after registration and read
///    lock-free. Model publishes go through the registry's hot-swap path
///    and never touch namespace snapshots.
///
/// Featurization serves from per-record PreparedRecord caches owned by the
/// snapshot's segments (built at registration, extended by AddRecord), so
/// the per-pair hot loop never re-tokenizes or re-normalizes a record;
/// outputs stay bit-identical to the raw offline path.
class Gateway {
 public:
  explicit Gateway(GatewayOptions options = {});

  /// \brief Installs a namespace: builds its base snapshot (segmented
  /// record + prepared stores and the blocking index, all copied out of the
  /// spec's tables) and freezes its feature pipeline. Fails on invalid
  /// specs or duplicate names. Publishing a model is a separate step
  /// (Publish / registry()).
  Status RegisterNamespace(const std::string& ns, NamespaceSpec spec);

  bool HasNamespace(const std::string& ns) const;
  std::vector<std::string> Namespaces() const;

  /// \brief Publishes a risk model for the namespace (hot-swap; returns the
  /// namespace's new version). The namespace must be registered. Never
  /// blocks in-flight Resolve calls: they finish on the snapshot they
  /// loaded at score time. `drift_baseline`, when given, freezes the
  /// training-time feature/risk distributions into the new ScorerSnapshot
  /// and arms the namespace's drift gauges against it (docs/TRACING.md);
  /// it is not persisted, so spill-reload and recovery serve without one
  /// until the next Publish.
  Result<uint64_t> Publish(const std::string& ns, RiskModel model,
                           std::shared_ptr<const DriftBaseline>
                               drift_baseline = nullptr);

  /// \brief The embedded registry (save/load of all models, LRU stats).
  ModelRegistry& registry() { return registry_; }
  const ModelRegistry& registry() const { return registry_; }

  /// \brief Scores record pairs end-to-end: candidate generation (or the
  /// request's explicit pairs), prepared-cache featurization, risk scoring.
  /// NotFound for unknown namespaces, InvalidArgument for empty or
  /// ambiguous requests, FailedPrecondition before the first Publish.
  /// Lock-free with respect to the namespace: the whole request runs on one
  /// atomically-loaded snapshot, concurrent with other Resolve calls, with
  /// publishes, and with AddRecord writers.
  Result<ResolveResponse> Resolve(const std::string& ns,
                                  const ResolveRequest& request);

  /// \brief Online single-record path: blocks a raw probe record against
  /// the namespace's opposite side and scores the resulting candidates —
  /// exactly the candidates batch blocking would emit if the probe were
  /// appended (see BlockingIndex::Candidates). The probe is prepared once
  /// per call; candidates come from the snapshot's prepared segments. Same
  /// snapshot semantics as Resolve (no namespace lock).
  Result<ProbeResponse> ResolveRecord(const std::string& ns,
                                      const Record& probe,
                                      size_t explain_top_k = 0);

  /// \brief Appends a record to one side of the namespace — record store,
  /// blocking index, and prepared cache stay index-aligned — making it
  /// visible to subsequent Resolve / ResolveRecord calls. Serializes with
  /// other AddRecord calls on the owning shard's writer mutex (sharded
  /// namespaces route to the least-loaded shard, so writers spread across
  /// shards run concurrently), never blocks readers: concurrent Resolve
  /// calls see the shard fully without the record or fully with it (one
  /// atomic snapshot swap), never a partial update. `entity_id` is optional
  /// ground truth (-1 = unknown).
  /// `timing` (optional) receives the wal_append/publish stage breakdown of
  /// this append — zero elsewhere, and wal_append_ms stays zero for
  /// non-durable namespaces.
  Status AddRecord(const std::string& ns, BlockingSide side, Record record,
                   int64_t entity_id = -1, StageTiming* timing = nullptr);

  /// \brief Current record count of one side of a namespace.
  Result<size_t> NumRecords(const std::string& ns, BlockingSide side) const;

  /// \brief Checkpoints a durable namespace now: materializes the current
  /// snapshot into immutable segment files, saves the served model at its
  /// exact version, starts a fresh WAL, and commits with one atomic
  /// manifest swap (full protocol: docs/DURABILITY.md). Sharded namespaces
  /// checkpoint shard by shard, each commit atomic on its own manifest.
  /// Serializes with AddRecord on the shard writer mutexes; readers are
  /// unaffected. FailedPrecondition when durability is off.
  Status Checkpoint(const std::string& ns);

  /// \brief Rebuilds a namespace from its durable state after a restart:
  /// loads the committed checkpoint, replays the WAL tail (torn entries
  /// checksum-detected and truncated), rebuilds the snapshot — bit-identical
  /// outputs to a gateway that never crashed — and re-publishes the
  /// checkpointed model at its recorded version. The namespace continues
  /// accepting AddRecord against the recovered WAL. NotFound when no
  /// durable state exists; IOError/InvalidArgument (with the offending
  /// file named) on corrupt or missing state.
  Status RecoverNamespace(const std::string& ns, RecoverNamespaceSpec spec);

  /// \brief WAL entries appended since the namespace's last checkpoint
  /// (recovery replay counts toward it). FailedPrecondition when durability
  /// is off.
  Result<size_t> WalEntriesSinceCheckpoint(const std::string& ns);

  /// \brief Removes up to `max_items` of the namespace's riskiest queued
  /// review pairs for labeling (r-HUMO's highest-risk-first order). Drained
  /// pairs stay outstanding until SubmitReviewLabel. Durable namespaces log
  /// each drain so a recovered queue reproduces the same displacement
  /// decisions. FailedPrecondition when review is off.
  Result<std::vector<ReviewItem>> DrainReview(const std::string& ns,
                                              size_t max_items);

  /// \brief Records a human label for a drained pair. Durable namespaces
  /// WAL the label before acknowledging, so an acked label is never lost
  /// across a crash. NotFound when the pair is not awaiting a label;
  /// FailedPrecondition when review is off.
  Status SubmitReviewLabel(const std::string& ns, int64_t left, int64_t right,
                           uint8_t truth);

  /// \brief Closes the loop: retrains the serving risk model on every label
  /// collected so far (incremental analytic-gradient pass seeded from the
  /// serving snapshot), refreshes the drift baseline from the label batch,
  /// and hot-publishes the result under live traffic — in-flight Resolves
  /// finish on the snapshot they loaded. FailedPrecondition when review is
  /// off, before the first Publish, or below `min_labels`.
  Result<ReviewRetrainResult> RetrainFromReview(
      const std::string& ns, const ReviewRetrainOptions& options = {});

  /// \brief The namespace's review-queue accounting snapshot (lock-free
  /// reads). FailedPrecondition when review is off.
  Result<ReviewQueueStats> ReviewStats(const std::string& ns) const;

  /// \brief Point-in-time snapshot of every runtime metric this gateway owns
  /// — request/stage latency histograms, risk-score distributions, WAL and
  /// checkpoint counters, registry LRU stats, serving-engine counters, and
  /// the snapshot-time gauges (record counts, resident engines). Feed it to
  /// ExportJson / ExportPrometheusText (obs/export.h). Safe to call
  /// concurrently with serving traffic: instruments are lock-free and the
  /// snapshot never tears an instrument. Empty when
  /// GatewayOptions::enable_metrics is false. Metric catalog:
  /// docs/OBSERVABILITY.md.
  learnrisk::MetricsSnapshot MetricsSnapshot() const;

  /// \brief The captured request traces currently resident in the audit
  /// ring (sorted by request id): head-sampled plus slow / high-risk
  /// exemplars, per TraceOptions. Never blocks serving traffic; a
  /// concurrently completing request's trace is either fully present or
  /// absent. Empty when tracing is disabled. Serialize with
  /// ExportTracesJson (obs/trace.h); schema in docs/TRACING.md.
  std::vector<std::shared_ptr<const RequestTrace>> RecentTraces() const;

 private:
  /// \brief One immutable view of a namespace's data. All heavy members are
  /// segment lists sharing storage with neighboring snapshots; copying a
  /// snapshot (the writer's first step) is a few shared_ptr vector copies.
  struct NamespaceSnapshot {
    SideStore left;
    SideStore right;  ///< unused when dedup
    BlockingIndex index;
  };

  /// \brief Per-namespace instrument bundle, cached as raw pointers so the
  /// hot paths record without touching the MetricRegistry. All null when
  /// GatewayOptions::enable_metrics is false — every recording site checks.
  /// Instruments are owned by metric_registry_ and outlive the namespace.
  struct NamespaceMetrics {
    ShardedCounter* resolve_requests = nullptr;        ///< successful Resolves
    ShardedCounter* resolve_record_requests = nullptr; ///< successful probes
    ShardedCounter* pairs_scored = nullptr;
    ShardedCounter* records_added = nullptr;
    ShardedCounter* recoveries = nullptr;
    ShardedCounter* recovered_wal_entries = nullptr;
    ShardedCounter* recovered_wal_bytes_discarded = nullptr;
    /// Request latency (includes failed requests; counters count successes).
    LatencyHistogram* resolve_latency = nullptr;
    LatencyHistogram* resolve_record_latency = nullptr;
    /// Stage latencies — the histogram twins of StageTiming's fields.
    LatencyHistogram* stage_block = nullptr;
    LatencyHistogram* stage_shard_merge = nullptr;  ///< sub-span of block
    LatencyHistogram* stage_featurize = nullptr;
    LatencyHistogram* stage_classify = nullptr;
    LatencyHistogram* stage_risk = nullptr;
    LatencyHistogram* stage_review = nullptr;
    LatencyHistogram* stage_wal_append = nullptr;
    LatencyHistogram* stage_publish = nullptr;
    LatencyHistogram* checkpoint_latency = nullptr;
    LatencyHistogram* recover_latency = nullptr;
    /// Review-loop instruments (docs/REVIEW.md); null when review is off.
    ShardedCounter* review_enqueued = nullptr;
    ShardedCounter* review_merged = nullptr;
    ShardedCounter* review_dropped = nullptr;
    ShardedCounter* review_drained = nullptr;
    ShardedCounter* review_labels = nullptr;
    ShardedCounter* review_retrains = nullptr;
    /// Review-WAL appends that failed during a fail-open enqueue (the
    /// request was served, the offer was skipped).
    ShardedCounter* review_log_failures = nullptr;
    /// Recovery-replay drain/label events whose pair was not found (e.g. a
    /// duplicate frame from an ambiguously-failed append); tolerated but
    /// surfaced.
    ShardedCounter* review_replay_misses = nullptr;
    LatencyHistogram* retrain_latency = nullptr;
    LatencyHistogram* retrain_publish_latency = nullptr;
    ValueHistogram* risk_scores = nullptr;  ///< served risk distribution
    /// Per-metric-column live feature distributions (drift monitoring;
    /// column order matches the pipeline's metric_names()). Empty unless
    /// enable_metrics and drift.enabled are both on.
    std::vector<ValueHistogram*> feature_values;
    /// Volume counters recorded inside NamespaceLog (bytes, frames, fsyncs).
    DurabilityMetrics durability;
  };

  /// \brief One independent shard of a namespace: its own snapshot pointer,
  /// writer mutex, and (when durable) WAL/checkpoint log. Unsharded
  /// namespaces are the S == 1 case of the same structure.
  struct Shard {
    /// Serializes AddRecord writers *of this shard*; readers never touch
    /// it, and writers to sibling shards proceed concurrently.
    std::mutex writer_mu;
    /// Current shard snapshot; accessed only via std::atomic_load/
    /// atomic_store (acquire/release). Never mutated in place.
    std::shared_ptr<const NamespaceSnapshot> snapshot;
    /// Durable WAL + checkpoint state; null when durability is off. Guarded
    /// by writer_mu like every other write-side structure.
    std::unique_ptr<NamespaceLog> log;
  };

  struct NamespaceState {
    bool dedup = false;
    /// Shard count (immutable after registration). Records live on shard
    /// (global id % num_shards) at local index (global id / num_shards);
    /// see gateway/shard_merge.h.
    size_t num_shards = 1;
    Schema schema;
    /// Immutable after registration; read lock-free.
    FeaturePipeline pipeline;
    /// The shards (size num_shards, never resized after registration; the
    /// unique_ptr indirection keeps Shard's mutex off any reallocation
    /// path).
    std::vector<std::unique_ptr<Shard>> shards;
    /// Writer routing state: records assigned per shard per side so far.
    /// AddRecord routes to the least-loaded shard (lowest index on ties),
    /// which reproduces the unsharded id sequence exactly for sequential
    /// adds. Guarded by route_mu (held only for the argmin, never across
    /// the append).
    std::mutex route_mu;
    std::vector<size_t> routed_left;
    std::vector<size_t> routed_right;  ///< unused when dedup
    /// Immutable after registration, like `pipeline`; read lock-free.
    NamespaceMetrics metrics;
    /// Training baseline of the most recent Publish that carried one;
    /// accessed only via std::atomic_load/atomic_store. Read by the drift
    /// gauge callbacks at snapshot time, swapped by Publish — cached here
    /// so a scrape never touches the model registry (whose Engine() call
    /// can do spill-reload IO).
    std::shared_ptr<const DriftBaseline> drift_baseline;
    /// The namespace's review queue; null when GatewayOptions::review is
    /// off. Internally synchronized — but in durable mode every mutation
    /// additionally serializes behind shard 0's writer_mu so WAL order
    /// equals apply order (review state is namespace-level, so it rides on
    /// shard 0's log).
    std::shared_ptr<ReviewQueue> review;

    const SideStore& right_store(const NamespaceSnapshot& snap) const {
      return dedup ? snap.left : snap.right;
    }
  };

  Result<std::shared_ptr<NamespaceState>> State(const std::string& ns) const;
  static std::shared_ptr<const NamespaceSnapshot> LoadShardSnapshot(
      const Shard& shard);
  /// \brief One acquire load per shard — pins a frozen view of the whole
  /// namespace for the duration of a request (index 0 is the only entry for
  /// unsharded namespaces).
  static std::vector<std::shared_ptr<const NamespaceSnapshot>> PinSnapshots(
      const NamespaceState& state);
  /// \brief Picks the shard for the next AddRecord on a side (least-loaded,
  /// lowest index on ties) and claims the slot under route_mu.
  static size_t RouteShard(NamespaceState& state, BlockingSide side);
  /// \brief Featurized batch -> engine score, shared by Resolve and
  /// ResolveRecord. Fills scores + the risk-stage timing, and records the
  /// stage latency / risk-score distribution into `metrics`. `stage_sink`
  /// (optional) receives the risk stage's TraceStageSpan; `scorer_out`
  /// (optional) receives the scorer snapshot currently published for the
  /// namespace, which trace capture uses to recompute rule activations and
  /// explanations for the top-k riskiest pairs.
  Status ScoreBatch(const std::string& ns, const NamespaceMetrics& metrics,
                    const FeaturizedBatch& batch, size_t explain_top_k,
                    ScoreResponse* scores, StageTiming* timing,
                    std::vector<TraceStageSpan>* stage_sink = nullptr,
                    std::shared_ptr<const ScorerSnapshot>* scorer_out =
                        nullptr);
  /// \brief Checkpoint body for one shard; caller holds that shard's
  /// writer_mu and has verified shard.log is non-null. Shard 0 additionally
  /// persists the review queue (its mutations serialize on the same mutex,
  /// so the snapshot is consistent with the WAL being reset).
  Status CheckpointLocked(const std::string& ns, NamespaceState& s,
                          Shard& shard);
  /// \brief Offers the request's top-budget riskiest decisions (from the
  /// shared `top_risk` order) to the namespace's review queue; durable
  /// namespaces WAL each offer first under shard 0's writer_mu. Fills
  /// StageTiming::review_ms. Exactly one of `pairs` / `probe_candidates`
  /// names the scored pairs (probes key as left = -1).
  Status EnqueueReview(NamespaceState& s, const FeaturizedBatch& batch,
                       const ScoreResponse& scores, uint64_t request_id,
                       const std::vector<size_t>& top_risk,
                       const std::vector<RecordPair>* pairs,
                       const std::vector<size_t>* probe_candidates,
                       StageTiming* timing,
                       std::vector<TraceStageSpan>* stage_sink);
  /// \brief Get-or-creates the namespace's instrument bundle in
  /// metric_registry_. Only called when enable_metrics is on.
  /// `metric_names` labels the per-column drift histograms (one per metric
  /// column; skipped when drift is off).
  NamespaceMetrics CreateNamespaceMetrics(
      const std::string& ns, const std::vector<std::string>& metric_names);
  /// \brief Registers the namespace's snapshot-time gauges (record counts,
  /// WAL backlog, per-column drift PSI); the callbacks hold a weak_ptr so
  /// they outlive nothing.
  void RegisterStateGauges(const std::string& ns,
                           const std::shared_ptr<NamespaceState>& state);

  /// \brief Next gateway-wide request id (1-based, monotone across APIs).
  uint64_t NextRequestId() {
    return next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  /// \brief Applies the capture policy to a completed request and, when it
  /// captures, builds the RequestTrace (stages, counts, top-k riskiest
  /// decisions with activations + explanations) and pushes it into the
  /// ring. `batch`/`scores`/`scorer` may be null (AddRecord traces carry no
  /// decisions); `pairs` xor `candidates` names the scored pairs.
  /// `top_risk`, when non-null and long enough, is the request's shared
  /// risk-descending index order (one top-k pass feeds both this capture
  /// and EnqueueReview); null = compute locally.
  void MaybeCaptureTrace(const char* api, const std::string& ns,
                         uint64_t request_id, uint64_t start_ns,
                         uint64_t total_ns,
                         std::vector<TraceStageSpan> stages,
                         size_t candidates, const FeaturizedBatch* batch,
                         const ScoreResponse* scores,
                         const std::shared_ptr<const ScorerSnapshot>& scorer,
                         const std::vector<RecordPair>* pairs,
                         const std::vector<size_t>* probe_candidates,
                         const std::vector<size_t>* top_risk = nullptr);

  GatewayOptions options_;
  /// Owns every instrument; declared before registry_ so the raw instrument
  /// pointers handed to the model registry (and through it to engines)
  /// outlive their users on destruction.
  MetricRegistry metric_registry_;
  ModelRegistry registry_;
  /// The trace audit ring; null when TraceOptions::enabled is false.
  /// Lock-free on both sides (docs/TRACING.md).
  std::unique_ptr<TraceBuffer> traces_;
  /// Gateway-wide request-id counter (ids are NextRequestId() results).
  std::atomic<uint64_t> next_request_id_{0};
  mutable std::mutex mu_;  ///< guards namespaces_ map shape only
  std::map<std::string, std::shared_ptr<NamespaceState>> namespaces_;
};

}  // namespace learnrisk

#endif  // LEARNRISK_GATEWAY_GATEWAY_H_
