// Copyright 2026 The LearnRisk Authors

#include "gateway/shard_merge.h"

#include <algorithm>
#include <set>
#include <string_view>
#include <unordered_set>
#include <utility>

#include "common/timer.h"
#include "data/blocking.h"

namespace learnrisk {

namespace {

/// \brief TokenBlocking's df cap at a record count, replicated bitwise from
/// BlockingIndex::DfCapAt so the merged caps match the unsharded index.
size_t DfCapAt(const BlockingConfig& config, size_t records) {
  const auto cap = static_cast<size_t>(config.max_token_df *
                                       static_cast<double>(records));
  return std::max<size_t>(cap, 1);
}

/// \brief Sum of one side's record counts across shards — the *global*
/// record count the caps must be evaluated at.
size_t GlobalRecords(const std::vector<const BlockingIndex*>& shards,
                     BlockingSide side) {
  size_t total = 0;
  for (const BlockingIndex* shard : shards) {
    total += shard->num_records(side);
  }
  return total;
}

/// \brief Appends every shard's posting ids of `token` on one side,
/// translated from local to global ids.
void GatherGlobalIds(const std::vector<const BlockingIndex*>& shards,
                     BlockingSide side, const std::string& token,
                     std::vector<size_t>* out) {
  const size_t num_shards = shards.size();
  for (size_t k = 0; k < num_shards; ++k) {
    const size_t before = out->size();
    shards[k]->AppendTokenIds(side, token, out);
    for (size_t i = before; i < out->size(); ++i) {
      (*out)[i] = GlobalId((*out)[i], k, num_shards);
    }
  }
}

}  // namespace

std::vector<RecordPair> MergedAllCandidates(
    const std::vector<const BlockingIndex*>& shards, double* merge_ms) {
  if (merge_ms != nullptr) *merge_ms = 0.0;
  if (shards.size() == 1) return shards[0]->AllCandidates();

  const BlockingConfig& config = shards[0]->config();
  const bool dedup = shards[0]->dedup();
  const size_t left_df_cap =
      DfCapAt(config, GlobalRecords(shards, BlockingSide::kLeft));
  const size_t right_df_cap =
      DfCapAt(config, GlobalRecords(shards, BlockingSide::kRight));

  // Union of distinct left-side tokens across shards, each processed once
  // with its *global* per-side posting lists — from there the caps, dedup
  // semantics, and set-ordered emission are verbatim
  // BlockingIndex::AllCandidates. The string_views point into shard segment
  // postings, which outlive this call.
  std::set<std::pair<size_t, size_t>> pair_set;
  std::unordered_set<std::string_view> seen;
  std::vector<size_t> left_ids;
  std::vector<size_t> right_ids;
  for (const BlockingIndex* shard : shards) {
    shard->ForEachToken(BlockingSide::kLeft, [&](const std::string& token) {
      if (!seen.insert(std::string_view(token)).second) return;
      left_ids.clear();
      GatherGlobalIds(shards, BlockingSide::kLeft, token, &left_ids);
      if (!dedup) {
        right_ids.clear();
        GatherGlobalIds(shards, BlockingSide::kRight, token, &right_ids);
      }
      const std::vector<size_t>& rids = dedup ? left_ids : right_ids;
      if (rids.empty()) return;
      if (left_ids.size() > left_df_cap || rids.size() > right_df_cap) {
        return;  // token too common to be discriminating
      }
      if (left_ids.size() > config.max_block_size ||
          rids.size() > config.max_block_size) {
        return;  // block purging
      }
      for (size_t li : left_ids) {
        for (size_t ri : rids) {
          if (dedup && li >= ri) continue;
          pair_set.emplace(li, ri);
        }
      }
    });
  }

  // Merge phase proper: the deterministic global ordering (the set's
  // iteration order) plus equivalence tagging against the owning shards.
  Timer merge_timer;
  const size_t num_shards = shards.size();
  std::vector<RecordPair> pairs;
  pairs.reserve(pair_set.size());
  for (const auto& [li, ri] : pair_set) {
    const int64_t left_entity =
        shards[li % num_shards]->EntityAt(BlockingSide::kLeft,
                                          li / num_shards);
    const bool equivalent =
        left_entity >= 0 &&
        left_entity == shards[ri % num_shards]->EntityAt(BlockingSide::kRight,
                                                         ri / num_shards);
    pairs.push_back(RecordPair{li, ri, equivalent});
  }
  if (merge_ms != nullptr) *merge_ms = merge_timer.ElapsedMillis();
  return pairs;
}

std::vector<size_t> MergedCandidates(
    const std::vector<const BlockingIndex*>& shards, const Record& probe,
    BlockingSide target, double* merge_ms) {
  if (merge_ms != nullptr) *merge_ms = 0.0;
  if (shards.size() == 1) return shards[0]->Candidates(probe, target);

  std::vector<size_t> out;
  const BlockingConfig& config = shards[0]->config();
  if (config.key_attribute >= probe.values.size()) return out;
  const bool dedup = shards[0]->dedup();
  // As in BlockingIndex::Candidates, the probe is scored as if appended next
  // to the opposite (probe) side, with every cap evaluated at the *global*
  // hypothetical record counts.
  const BlockingSide probe_side = dedup ? target : OppositeSide(target);
  const size_t probe_df_cap =
      DfCapAt(config, GlobalRecords(shards, probe_side) + 1);
  const size_t target_df_cap =
      dedup ? probe_df_cap
            : DfCapAt(config, GlobalRecords(shards, target));

  std::set<size_t> found;
  std::vector<size_t> ids;
  for (const std::string& tok :
       BlockingKeyTokens(probe, config.key_attribute,
                         config.min_token_length)) {
    size_t target_count = 0;
    for (const BlockingIndex* shard : shards) {
      target_count += shard->TokenCount(target, tok);
    }
    if (target_count == 0) continue;
    size_t probe_count = target_count;
    if (!dedup) {
      probe_count = 0;
      for (const BlockingIndex* shard : shards) {
        probe_count += shard->TokenCount(probe_side, tok);
      }
    }
    ++probe_count;  // the probe joins its own side's posting list
    const size_t target_block = dedup ? target_count + 1 : target_count;
    if (target_block > target_df_cap || target_block > config.max_block_size) {
      continue;  // token too common on the target side
    }
    if (probe_count > probe_df_cap || probe_count > config.max_block_size) {
      continue;  // token too common on the probe's side
    }
    ids.clear();
    GatherGlobalIds(shards, target, tok, &ids);
    found.insert(ids.begin(), ids.end());
  }

  // Merge phase: the deterministic ascending global ordering.
  Timer merge_timer;
  out.assign(found.begin(), found.end());
  if (merge_ms != nullptr) *merge_ms = merge_timer.ElapsedMillis();
  return out;
}

}  // namespace learnrisk
