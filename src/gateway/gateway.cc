// Copyright 2026 The LearnRisk Authors

#include "gateway/gateway.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <tuple>
#include <utility>

#include "common/timer.h"
#include "gateway/shard_merge.h"
#include "risk/model_io.h"

namespace learnrisk {
namespace {

// Feeds a millisecond measurement that was already taken for StageTiming
// into a nanosecond histogram — one clock reading backing both views.
void RecordMs(LatencyHistogram* histogram, double ms) {
  if (histogram == nullptr) return;
  histogram->Record(ms <= 0.0 ? 0 : static_cast<uint64_t>(ms * 1e6));
}

// Steady-clock nanoseconds (trace start timestamps: monotone within the
// process, comparable across requests, never wall-clock).
uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// A stage measurement taken outside a TraceSpan (featurize/classify come
// pre-timed from the pipeline), appended to a trace's stage list.
void SinkStage(std::vector<TraceStageSpan>* sink, const char* stage,
               double ms) {
  if (sink != nullptr) sink->push_back(TraceStageSpan{stage, ms});
}

// --- Sharded durable layout (docs/DURABILITY.md "Sharded namespaces") ------
// An unsharded namespace keeps the original layout (<dir>/<ns>/MANIFEST...).
// A sharded one marks the namespace directory with a SHARDS meta file and
// keeps one full NamespaceLog per shard under <dir>/<ns>/shards/s<k>/, so
// every per-shard WAL/checkpoint/manifest keeps the exact single-namespace
// protocol. The SHARDS file is written (tmp + rename) before any shard log
// exists; the sharded state counts as committed only once every shard's
// manifest is committed — anything less is registration debris.

constexpr char kShardsFileName[] = "SHARDS";
constexpr char kShardsHeader[] = "learnrisk-namespace-shards v1";

std::string ShardsFilePath(const DurabilityOptions& options,
                           const std::string& ns) {
  return options.dir + "/" + ns + "/" + kShardsFileName;
}

// Durability options addressing the per-shard logs of one namespace: shard
// k's log is namespace "s<k>" under <dir>/<ns>/shards.
DurabilityOptions ShardDurability(const DurabilityOptions& options,
                                  const std::string& ns) {
  DurabilityOptions shard = options;
  shard.dir = options.dir + "/" + ns + "/shards";
  return shard;
}

std::string ShardLogName(size_t shard) {
  return "s" + std::to_string(shard);
}

Status WriteShardsFile(const std::string& path, size_t num_shards) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Status::IOError("cannot open '" + tmp + "'");
    out << kShardsHeader << "\n" << num_shards << "\n";
    out.flush();
    if (!out) return Status::IOError("error writing '" + tmp + "'");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("cannot commit '" + path + "': " + ec.message());
  }
  return Status::OK();
}

// Shard count recorded for a namespace; 0 = no SHARDS file (unsharded /
// legacy layout). The file is rename-committed, so a corrupt one is real
// damage, not a torn write.
Result<size_t> ReadShardsFile(const std::string& path) {
  if (!std::filesystem::exists(path)) return size_t{0};
  std::ifstream in(path);
  std::string header;
  size_t num_shards = 0;
  if (!in || !std::getline(in, header) || header != kShardsHeader ||
      !(in >> num_shards) || num_shards < 2) {
    return Status::IOError("corrupt shard meta file '" + path + "'");
  }
  return num_shards;
}

// The records shard `shard` of `num_shards` owns: global ids congruent to
// `shard` (mod num_shards), in ascending order, so shard-local index i is
// global id i * num_shards + shard.
Result<Table> ShardSubTable(const Table& src, size_t shard,
                            size_t num_shards) {
  Table sub(src.schema());
  for (size_t i = shard; i < src.num_records(); i += num_shards) {
    LEARNRISK_RETURN_NOT_OK(sub.Append(src.record(i), src.entity_id(i)));
  }
  return sub;
}

// The min(k, n) riskiest indices, risk descending, ties broken by original
// order. One of these per request feeds BOTH trace capture and the review
// enqueue, so the decisions are scanned once however many consumers want
// the top of the ranking.
std::vector<size_t> TopRiskIndices(const std::vector<double>& risk,
                                   size_t k) {
  std::vector<size_t> order(risk.size());
  std::iota(order.begin(), order.end(), size_t{0});
  k = std::min(k, order.size());
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&risk](size_t a, size_t b) {
                      if (risk[a] != risk[b]) return risk[a] > risk[b];
                      return a < b;
                    });
  order.resize(k);
  return order;
}

}  // namespace

Gateway::Gateway(GatewayOptions options)
    : options_(std::move(options)), registry_(options_.registry) {
  if (options_.trace.enabled) {
    traces_ = std::make_unique<TraceBuffer>(options_.trace.buffer_capacity);
  }
  if (!options_.enable_metrics) return;
  if (traces_ != nullptr) {
    metric_registry_.GaugeCallback(
        "learnrisk_gateway_traces_captured", {},
        "Request traces captured into the audit ring (head + tail)",
        [this]() { return static_cast<int64_t>(traces_->pushed()); });
    metric_registry_.GaugeCallback(
        "learnrisk_gateway_traces_dropped", {},
        "Captured traces overwritten before a scrape (ring overflow)",
        [this]() { return static_cast<int64_t>(traces_->dropped()); });
  }
  // Gateway-wide instruments: the registry's LRU counters, the engine-level
  // serving counters (shared by every engine the registry creates), and the
  // snapshot-time gauges over registry state.
  ModelRegistryMetrics registry_metrics;
  registry_metrics.publishes =
      metric_registry_.Counter("learnrisk_registry_publishes_total", {},
                               "Successful model publishes via the registry");
  registry_metrics.engine_hits = metric_registry_.Counter(
      "learnrisk_registry_engine_hits_total", {},
      "Engine lookups served by a resident engine");
  registry_metrics.engine_reloads = metric_registry_.Counter(
      "learnrisk_registry_engine_reloads_total", {},
      "Spilled engine snapshots reloaded from disk");
  registry_metrics.spills =
      metric_registry_.Counter("learnrisk_registry_spills_total", {},
                               "Eviction model files written to the spill dir");
  registry_metrics.evictions =
      metric_registry_.Counter("learnrisk_registry_evictions_total", {},
                               "Resident engines dropped after a spill");
  registry_metrics.pinned_engine_waits = metric_registry_.Counter(
      "learnrisk_registry_pinned_engine_waits_total", {},
      "Eviction rounds left over cap because every candidate was pinned");
  ServingEngineMetrics engine_metrics;
  engine_metrics.publishes =
      metric_registry_.Counter("learnrisk_serving_publishes_total", {},
                               "Scorer snapshot swaps installed by engines");
  engine_metrics.score_batches =
      metric_registry_.Counter("learnrisk_serving_score_batches_total", {},
                               "Successful ServingEngine::Score calls");
  engine_metrics.scored_pairs =
      metric_registry_.Counter("learnrisk_serving_scored_pairs_total", {},
                               "Pairs scored across those batches");
  engine_metrics.score_ns = metric_registry_.Latency(
      "learnrisk_serving_score_latency_seconds", {},
      "Per-batch ServingEngine::Score wall time (all outcomes)");
  registry_.set_metrics(registry_metrics, engine_metrics);
  metric_registry_.GaugeCallback(
      "learnrisk_registry_resident_engines", {},
      "Namespaces whose engine snapshot is currently in memory",
      [this]() { return static_cast<int64_t>(registry_.resident_count()); });
  metric_registry_.GaugeCallback(
      "learnrisk_registry_namespaces", {},
      "Namespaces known to the model registry", [this]() {
        return static_cast<int64_t>(registry_.Namespaces().size());
      });
}

learnrisk::MetricsSnapshot Gateway::MetricsSnapshot() const {
  return metric_registry_.Snapshot();
}

Gateway::NamespaceMetrics Gateway::CreateNamespaceMetrics(
    const std::string& ns, const std::vector<std::string>& metric_names) {
  NamespaceMetrics m;
  const MetricLabels ns_labels = {{"namespace", ns}};
  if (options_.drift.enabled) {
    m.feature_values.reserve(metric_names.size());
    for (const std::string& column : metric_names) {
      // Label keys sorted ("column" < "namespace") like every other family.
      m.feature_values.push_back(metric_registry_.Values(
          "learnrisk_gateway_feature_value",
          {{"column", column}, {"namespace", ns}},
          "Distribution of served feature values per metric column"));
    }
  }
  auto stage = [&](const char* name) {
    return metric_registry_.Latency(
        "learnrisk_gateway_stage_latency_seconds",
        {{"namespace", ns}, {"stage", name}},
        "Per-stage wall time of gateway requests (StageTiming's twin)");
  };
  m.stage_block = stage("block");
  m.stage_shard_merge = stage("shard_merge");
  m.stage_featurize = stage("featurize");
  m.stage_classify = stage("classify");
  m.stage_risk = stage("risk");
  m.stage_wal_append = stage("wal_append");
  m.stage_publish = stage("publish");
  if (options_.review.enabled) {
    m.stage_review = stage("review");
    m.review_enqueued = metric_registry_.Counter(
        "learnrisk_gateway_review_enqueued_total", ns_labels,
        "Review offers admitted into the queue");
    m.review_merged = metric_registry_.Counter(
        "learnrisk_gateway_review_merged_total", ns_labels,
        "Review offers deduplicated onto an already-queued or labeled pair");
    m.review_dropped = metric_registry_.Counter(
        "learnrisk_gateway_review_dropped_total", ns_labels,
        "Review offers dropped at queue capacity (displacements show in "
        "ReviewStats)");
    m.review_drained = metric_registry_.Counter(
        "learnrisk_gateway_review_drained_total", ns_labels,
        "Review items handed to a reviewer via DrainReview");
    m.review_labels = metric_registry_.Counter(
        "learnrisk_gateway_review_labels_total", ns_labels,
        "Human labels accepted via SubmitReviewLabel");
    m.review_retrains = metric_registry_.Counter(
        "learnrisk_gateway_review_retrains_total", ns_labels,
        "Successful retrain-and-publish cycles from review labels");
    m.review_log_failures = metric_registry_.Counter(
        "learnrisk_gateway_review_log_failures_total", ns_labels,
        "Review-WAL append failures absorbed by a fail-open enqueue "
        "(request served, offer skipped)");
    m.review_replay_misses = metric_registry_.Counter(
        "learnrisk_gateway_review_replay_misses_total", ns_labels,
        "Recovery-replay review events whose pair was not found "
        "(duplicate frames from ambiguously-failed appends; tolerated)");
    m.retrain_latency = metric_registry_.Latency(
        "learnrisk_gateway_retrain_latency_seconds", ns_labels,
        "Incremental retrain wall time (labels to tuned model)");
    m.retrain_publish_latency = metric_registry_.Latency(
        "learnrisk_gateway_retrain_publish_latency_seconds", ns_labels,
        "Retrained-model publish wall time (baseline, hot-swap, checkpoint)");
  }
  m.resolve_latency = metric_registry_.Latency(
      "learnrisk_gateway_request_latency_seconds",
      {{"api", "resolve"}, {"namespace", ns}},
      "End-to-end gateway request wall time (all outcomes)");
  m.resolve_record_latency = metric_registry_.Latency(
      "learnrisk_gateway_request_latency_seconds",
      {{"api", "resolve_record"}, {"namespace", ns}},
      "End-to-end gateway request wall time (all outcomes)");
  m.resolve_requests = metric_registry_.Counter(
      "learnrisk_gateway_requests_total",
      {{"api", "resolve"}, {"namespace", ns}},
      "Successfully answered gateway requests");
  m.resolve_record_requests = metric_registry_.Counter(
      "learnrisk_gateway_requests_total",
      {{"api", "resolve_record"}, {"namespace", ns}},
      "Successfully answered gateway requests");
  m.pairs_scored =
      metric_registry_.Counter("learnrisk_gateway_pairs_scored_total",
                               ns_labels, "Candidate pairs risk-scored");
  m.records_added = metric_registry_.Counter(
      "learnrisk_gateway_records_added_total", ns_labels,
      "Records appended online via AddRecord");
  m.recoveries = metric_registry_.Counter(
      "learnrisk_gateway_recoveries_total", ns_labels,
      "Successful RecoverNamespace calls");
  m.recovered_wal_entries = metric_registry_.Counter(
      "learnrisk_gateway_recovered_wal_entries_total", ns_labels,
      "WAL tail entries replayed during recovery");
  m.recovered_wal_bytes_discarded = metric_registry_.Counter(
      "learnrisk_gateway_recovered_wal_bytes_discarded_total", ns_labels,
      "Torn or corrupt WAL tail bytes truncated during recovery");
  m.checkpoint_latency = metric_registry_.Latency(
      "learnrisk_gateway_checkpoint_latency_seconds", ns_labels,
      "Full checkpoint wall time (segments, model, manifest swap)");
  m.recover_latency = metric_registry_.Latency(
      "learnrisk_gateway_recover_latency_seconds", ns_labels,
      "Full namespace recovery wall time (load, replay, rebuild)");
  m.risk_scores =
      metric_registry_.Values("learnrisk_gateway_risk_score", ns_labels,
                              "Distribution of served risk scores");
  m.durability.wal_appends = metric_registry_.Counter(
      "learnrisk_gateway_wal_appends_total", ns_labels,
      "Acknowledged WAL record appends");
  m.durability.wal_append_bytes = metric_registry_.Counter(
      "learnrisk_gateway_wal_append_bytes_total", ns_labels,
      "WAL frame bytes written");
  m.durability.wal_fsyncs = metric_registry_.Counter(
      "learnrisk_gateway_wal_fsyncs_total", ns_labels,
      "fsync calls on the active WAL (fsync_appends mode)");
  m.durability.checkpoints = metric_registry_.Counter(
      "learnrisk_gateway_checkpoints_total", ns_labels,
      "Committed checkpoints (manifest swapped)");
  m.durability.checkpoint_bytes = metric_registry_.Counter(
      "learnrisk_gateway_checkpoint_bytes_total", ns_labels,
      "Checkpoint segment bytes written");
  m.durability.checkpoint_records = metric_registry_.Counter(
      "learnrisk_gateway_checkpoint_records_total", ns_labels,
      "Records across written checkpoint segments");
  return m;
}

void Gateway::RegisterStateGauges(
    const std::string& ns, const std::shared_ptr<NamespaceState>& state) {
  std::weak_ptr<NamespaceState> weak = state;
  // Record-count gauges report the namespace total (sum over shards);
  // sharded namespaces additionally expose a per-shard family below, kept
  // separate so Prometheus sums over either family stay correct.
  auto records_gauge = [weak](BlockingSide side) {
    return [weak, side]() -> int64_t {
      const std::shared_ptr<NamespaceState> s = weak.lock();
      if (s == nullptr) return 0;
      int64_t total = 0;
      for (const auto& shard : s->shards) {
        total += static_cast<int64_t>(
            LoadShardSnapshot(*shard)->index.num_records(side));
      }
      return total;
    };
  };
  metric_registry_.GaugeCallback(
      "learnrisk_gateway_records", {{"namespace", ns}, {"side", "left"}},
      "Records visible in the namespace's current snapshot",
      records_gauge(BlockingSide::kLeft));
  if (!state->dedup) {
    metric_registry_.GaugeCallback(
        "learnrisk_gateway_records", {{"namespace", ns}, {"side", "right"}},
        "Records visible in the namespace's current snapshot",
        records_gauge(BlockingSide::kRight));
  }
  if (state->num_shards > 1) {
    auto shard_records_gauge = [weak](size_t shard_idx, BlockingSide side) {
      return [weak, shard_idx, side]() -> int64_t {
        const std::shared_ptr<NamespaceState> s = weak.lock();
        if (s == nullptr || shard_idx >= s->shards.size()) return 0;
        return static_cast<int64_t>(
            LoadShardSnapshot(*s->shards[shard_idx])
                ->index.num_records(side));
      };
    };
    for (size_t k = 0; k < state->num_shards; ++k) {
      const std::string shard_label = std::to_string(k);
      metric_registry_.GaugeCallback(
          "learnrisk_gateway_shard_records",
          {{"namespace", ns}, {"shard", shard_label}, {"side", "left"}},
          "Records visible in one shard's current snapshot",
          shard_records_gauge(k, BlockingSide::kLeft));
      if (!state->dedup) {
        metric_registry_.GaugeCallback(
            "learnrisk_gateway_shard_records",
            {{"namespace", ns}, {"shard", shard_label}, {"side", "right"}},
            "Records visible in one shard's current snapshot",
            shard_records_gauge(k, BlockingSide::kRight));
      }
    }
  }
  if (state->review != nullptr) {
    metric_registry_.GaugeCallback(
        "learnrisk_gateway_review_queue_depth", {{"namespace", ns}},
        "Resident (drainable) pairs in the namespace's review queue",
        [weak]() -> int64_t {
          const std::shared_ptr<NamespaceState> s = weak.lock();
          return s == nullptr ? 0
                              : static_cast<int64_t>(s->review->depth());
        });
    metric_registry_.GaugeCallback(
        "learnrisk_gateway_review_outstanding", {{"namespace", ns}},
        "Drained review pairs awaiting a label",
        [weak]() -> int64_t {
          const std::shared_ptr<NamespaceState> s = weak.lock();
          return s == nullptr
                     ? 0
                     : static_cast<int64_t>(s->review->outstanding());
        });
  }
  if (state->shards[0]->log != nullptr) {
    metric_registry_.GaugeCallback(
        "learnrisk_gateway_wal_entries_since_checkpoint",
        {{"namespace", ns}},
        "WAL entries appended since the namespace's last checkpoint "
        "(sharded: summed over the per-shard WALs)",
        [weak]() -> int64_t {
          const std::shared_ptr<NamespaceState> s = weak.lock();
          if (s == nullptr) return 0;
          int64_t total = 0;
          for (const auto& shard : s->shards) {
            std::lock_guard<std::mutex> writer(shard->writer_mu);
            if (shard->log != nullptr) {
              total += static_cast<int64_t>(
                  shard->log->wal_entries_since_checkpoint());
            }
          }
          return total;
        });
  }
  if (!state->metrics.feature_values.empty()) {
    // Per-column drift divergence, computed at snapshot time from the live
    // feature histograms vs the baseline the last Publish supplied. Reads 0
    // until a model is published with a baseline (docs/TRACING.md).
    const char* psi_help =
        "PSI (micro-units) of the live distribution vs the published model's "
        "training baseline";
    const std::vector<std::string>& columns = state->pipeline.metric_names();
    const size_t num_columns =
        std::min(columns.size(), state->metrics.feature_values.size());
    for (size_t c = 0; c < num_columns; ++c) {
      metric_registry_.GaugeCallback(
          "learnrisk_gateway_drift_psi_micros",
          {{"column", columns[c]}, {"namespace", ns}}, psi_help,
          [weak, c]() -> int64_t {
            const std::shared_ptr<NamespaceState> s = weak.lock();
            if (s == nullptr) return 0;
            const std::shared_ptr<const DriftBaseline> baseline =
                std::atomic_load_explicit(&s->drift_baseline,
                                          std::memory_order_acquire);
            if (baseline == nullptr || c >= baseline->columns().size() ||
                c >= s->metrics.feature_values.size()) {
              return 0;
            }
            return PsiMicros(baseline->columns()[c],
                             s->metrics.feature_values[c]->Snapshot());
          });
    }
    if (state->metrics.risk_scores != nullptr) {
      metric_registry_.GaugeCallback(
          "learnrisk_gateway_drift_psi_micros",
          {{"column", "risk_score"}, {"namespace", ns}}, psi_help,
          [weak]() -> int64_t {
            const std::shared_ptr<NamespaceState> s = weak.lock();
            if (s == nullptr) return 0;
            const std::shared_ptr<const DriftBaseline> baseline =
                std::atomic_load_explicit(&s->drift_baseline,
                                          std::memory_order_acquire);
            if (baseline == nullptr || !baseline->has_risk() ||
                s->metrics.risk_scores == nullptr) {
              return 0;
            }
            return PsiMicros(baseline->risk(),
                             s->metrics.risk_scores->Snapshot());
          });
    }
    const double alert_psi = options_.drift.alert_psi;
    metric_registry_.GaugeCallback(
        "learnrisk_gateway_drift_columns_alerted", {{"namespace", ns}},
        "Metric columns whose PSI vs the training baseline is at or above "
        "DriftOptions::alert_psi",
        [weak, alert_psi]() -> int64_t {
          const std::shared_ptr<NamespaceState> s = weak.lock();
          if (s == nullptr) return 0;
          const std::shared_ptr<const DriftBaseline> baseline =
              std::atomic_load_explicit(&s->drift_baseline,
                                        std::memory_order_acquire);
          if (baseline == nullptr) return 0;
          int64_t alerted = 0;
          const size_t n = std::min(baseline->columns().size(),
                                    s->metrics.feature_values.size());
          for (size_t c = 0; c < n; ++c) {
            if (Psi(baseline->columns()[c],
                    s->metrics.feature_values[c]->Snapshot()) >= alert_psi) {
              ++alerted;
            }
          }
          return alerted;
        });
  }
}

Status Gateway::RegisterNamespace(const std::string& ns, NamespaceSpec spec) {
  if (!ModelRegistry::ValidNamespace(ns)) {
    return Status::InvalidArgument("invalid namespace '" + ns + "'");
  }
  if (spec.left == nullptr) {
    return Status::InvalidArgument("namespace spec has no left table");
  }
  const bool dedup = spec.right == nullptr || spec.right == spec.left;
  if (!dedup && !spec.left->schema().Equals(spec.right->schema())) {
    return Status::InvalidArgument(
        "left and right tables have different schemas");
  }
  if (spec.suite.num_metrics() == 0) {
    return Status::InvalidArgument("namespace spec has an empty metric suite");
  }
  if (spec.classifier == nullptr) {
    return Status::InvalidArgument("namespace spec has no classifier");
  }
  for (size_t c : spec.classifier_columns) {
    if (c >= spec.suite.num_metrics()) {
      return Status::InvalidArgument("classifier column out of range");
    }
  }
  if (spec.blocking.key_attribute >= spec.left->schema().num_attributes()) {
    return Status::InvalidArgument("blocking key attribute out of range");
  }
  if (HasNamespace(ns)) {
    // Checked again at the emplace below (the build is lock-free and could
    // race another registration); this early exit just avoids building the
    // base segments and the blocking index for a name that's taken.
    return Status::FailedPrecondition("namespace '" + ns +
                                      "' already registered");
  }

  const size_t num_shards = std::max<size_t>(spec.shards, 1);
  auto state = std::make_shared<NamespaceState>();
  state->dedup = dedup;
  state->num_shards = num_shards;
  state->schema = spec.left->schema();
  state->pipeline =
      FeaturePipeline(std::move(spec.suite), std::move(spec.classifier),
                      std::move(spec.classifier_columns));
  state->pipeline.set_parallelism(options_.request_parallelism);

  // Split the base tables round-robin by global id (record i -> shard
  // i % S at local index i / S, so global ids equal the table indices
  // exactly — the invariant every cross-shard merge relies on). S == 1
  // skips the copy and builds straight from the spec's tables.
  std::vector<Table> left_parts;
  std::vector<Table> right_parts;
  if (num_shards > 1) {
    for (size_t k = 0; k < num_shards; ++k) {
      Result<Table> left_part = ShardSubTable(*spec.left, k, num_shards);
      if (!left_part.ok()) return left_part.status();
      left_parts.push_back(left_part.MoveValueOrDie());
      if (!dedup) {
        Result<Table> right_part = ShardSubTable(*spec.right, k, num_shards);
        if (!right_part.ok()) return right_part.status();
        right_parts.push_back(right_part.MoveValueOrDie());
      }
    }
  }
  auto shard_left = [&](size_t k) -> const Table& {
    return num_shards == 1 ? *spec.left : left_parts[k];
  };
  auto shard_right = [&](size_t k) -> const Table& {
    if (dedup) return shard_left(k);
    return num_shards == 1 ? *spec.right : right_parts[k];
  };

  // Each shard's base snapshot owns segment copies of its sub-tables, so
  // AddRecord can grow the namespace online without touching the caller's
  // tables.
  state->routed_left.assign(num_shards, 0);
  state->routed_right.assign(num_shards, 0);
  for (size_t k = 0; k < num_shards; ++k) {
    const Table& left_k = shard_left(k);
    const Table& right_k = shard_right(k);
    Result<BlockingIndex> index =
        BlockingIndex::Build(left_k, right_k, spec.blocking);
    if (!index.ok()) return index.status();
    auto snapshot = std::make_shared<NamespaceSnapshot>();
    snapshot->index = index.MoveValueOrDie();
    snapshot->left = SideStore::Build(left_k, state->pipeline.suite());
    if (!dedup) {
      snapshot->right = SideStore::Build(right_k, state->pipeline.suite());
    }
    auto shard = std::make_unique<Shard>();
    // Registration publishes the first snapshot before the state becomes
    // visible in the map; no reader can observe a null snapshot.
    shard->snapshot = std::move(snapshot);
    state->shards.push_back(std::move(shard));
    state->routed_left[k] = left_k.num_records();
    if (!dedup) state->routed_right[k] = right_k.num_records();
  }
  // Instruments are get-or-create, so a registration that loses the emplace
  // race below simply shares the winner's instruments — nothing leaks.
  if (options_.enable_metrics) {
    state->metrics = CreateNamespaceMetrics(ns, state->pipeline.metric_names());
  }
  if (options_.review.enabled) {
    state->review =
        std::make_shared<ReviewQueue>(options_.review.queue_capacity);
  }

  if (!options_.durability.dir.empty()) {
    // Durable registration: commit the base tables as checkpoint 1 before
    // the namespace serves anything, so a crash at any later point can
    // recover at least the registered state. Fails (leaving the gateway
    // unchanged) if committed durable state for the name already exists —
    // that state must be recovered, not silently overwritten. The sharded
    // and unsharded layouts guard against each other: an unsharded
    // registration refuses to clobber committed sharded state and vice
    // versa.
    Result<size_t> prior_shards =
        ReadShardsFile(ShardsFilePath(options_.durability, ns));
    if (!prior_shards.ok()) return prior_shards.status();
    if (num_shards == 1) {
      if (*prior_shards > 0) {
        const DurabilityOptions shard_opts =
            ShardDurability(options_.durability, ns);
        bool committed = true;
        for (size_t k = 0; k < *prior_shards; ++k) {
          if (!NamespaceLog::Exists(shard_opts.dir, ShardLogName(k))) {
            committed = false;
            break;
          }
        }
        if (committed) {
          return Status::FailedPrecondition(
              "sharded durable state already exists for namespace '" + ns +
              "'; recover it instead of re-registering");
        }
        // Interrupted sharded registration: NamespaceLog::Create below
        // clears the whole namespace directory (no legacy MANIFEST exists).
      }
      Result<std::unique_ptr<NamespaceLog>> log =
          NamespaceLog::Create(options_.durability, ns);
      if (!log.ok()) return log.status();
      state->shards[0]->log = log.MoveValueOrDie();
      state->shards[0]->log->set_metrics(state->metrics.durability);
      TraceSpan span(state->metrics.checkpoint_latency);
      LEARNRISK_RETURN_NOT_OK(state->shards[0]->log->WriteCheckpoint(
          *spec.left, dedup ? nullptr : spec.right.get(), 0, nullptr));
    } else {
      if (NamespaceLog::Exists(options_.durability.dir, ns)) {
        return Status::FailedPrecondition(
            "durable state already exists for namespace '" + ns +
            "'; recover it instead of re-registering");
      }
      const DurabilityOptions shard_opts =
          ShardDurability(options_.durability, ns);
      if (*prior_shards > 0) {
        // A SHARDS file with every shard manifest committed is a complete
        // sharded namespace; anything less is debris from an interrupted
        // registration (a crash before the last manifest commit means the
        // registration was never acknowledged) and is cleared.
        bool committed = true;
        for (size_t k = 0; k < *prior_shards; ++k) {
          if (!NamespaceLog::Exists(shard_opts.dir, ShardLogName(k))) {
            committed = false;
            break;
          }
        }
        if (committed) {
          return Status::FailedPrecondition(
              "sharded durable state already exists for namespace '" + ns +
              "'; recover it instead of re-registering");
        }
        std::error_code ec;
        std::filesystem::remove_all(shard_opts.dir, ec);
        std::filesystem::remove(ShardsFilePath(options_.durability, ns), ec);
      }
      {
        std::error_code ec;
        std::filesystem::create_directories(options_.durability.dir + "/" + ns,
                                            ec);
        if (ec) {
          return Status::IOError("cannot create namespace directory for '" +
                                 ns + "': " + ec.message());
        }
      }
      // The SHARDS marker lands before any shard log so recovery (and the
      // debris detection above) always knows the intended layout.
      LEARNRISK_RETURN_NOT_OK(WriteShardsFile(
          ShardsFilePath(options_.durability, ns), num_shards));
      for (size_t k = 0; k < num_shards; ++k) {
        Result<std::unique_ptr<NamespaceLog>> log =
            NamespaceLog::Create(shard_opts, ShardLogName(k));
        if (!log.ok()) return log.status();
        Shard& shard = *state->shards[k];
        shard.log = log.MoveValueOrDie();
        shard.log->set_metrics(state->metrics.durability);
        TraceSpan span(state->metrics.checkpoint_latency);
        LEARNRISK_RETURN_NOT_OK(shard.log->WriteCheckpoint(
            shard_left(k), dedup ? nullptr : &shard_right(k), 0, nullptr));
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!namespaces_.emplace(ns, state).second) {
      return Status::FailedPrecondition("namespace '" + ns +
                                        "' already registered");
    }
  }
  if (options_.enable_metrics) RegisterStateGauges(ns, state);
  return Status::OK();
}

bool Gateway::HasNamespace(const std::string& ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  return namespaces_.count(ns) > 0;
}

std::vector<std::string> Gateway::Namespaces() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(namespaces_.size());
  for (const auto& [ns, state] : namespaces_) names.push_back(ns);
  return names;
}

Result<uint64_t> Gateway::Publish(
    const std::string& ns, RiskModel model,
    std::shared_ptr<const DriftBaseline> drift_baseline) {
  Result<std::shared_ptr<NamespaceState>> state = State(ns);
  if (!state.ok()) return state.status();
  Result<uint64_t> version =
      registry_.Publish(ns, std::move(model), drift_baseline);
  if (version.ok() && drift_baseline != nullptr) {
    // Cache the baseline on the namespace so the drift gauge callbacks read
    // it with one atomic load — never through registry_.Engine(), whose
    // spill-reload can do IO a metrics scrape must not wait on.
    std::atomic_store_explicit(&(*state)->drift_baseline,
                               std::move(drift_baseline),
                               std::memory_order_release);
  }
  return version;
}

std::vector<std::shared_ptr<const RequestTrace>> Gateway::RecentTraces()
    const {
  if (traces_ == nullptr) return {};
  return traces_->Snapshot();
}

Result<std::shared_ptr<Gateway::NamespaceState>> Gateway::State(
    const std::string& ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = namespaces_.find(ns);
  if (it == namespaces_.end()) {
    return Status::NotFound("unknown namespace '" + ns + "'");
  }
  return it->second;
}

std::shared_ptr<const Gateway::NamespaceSnapshot> Gateway::LoadShardSnapshot(
    const Shard& shard) {
  return std::atomic_load_explicit(&shard.snapshot,
                                   std::memory_order_acquire);
}

std::vector<std::shared_ptr<const Gateway::NamespaceSnapshot>>
Gateway::PinSnapshots(const NamespaceState& state) {
  std::vector<std::shared_ptr<const NamespaceSnapshot>> snaps;
  snaps.reserve(state.shards.size());
  for (const auto& shard : state.shards) {
    snaps.push_back(LoadShardSnapshot(*shard));
  }
  return snaps;
}

size_t Gateway::RouteShard(NamespaceState& state, BlockingSide side) {
  if (state.shards.size() == 1) return 0;
  std::lock_guard<std::mutex> lock(state.route_mu);
  // Least-loaded shard, lowest index on ties. For sequential adds this
  // reproduces the unsharded global id sequence exactly: after n records a
  // side's counts are the balanced split of n, and the minimum sits at
  // shard n % S — precisely where global id n lives.
  std::vector<size_t>& counts =
      (state.dedup || side == BlockingSide::kLeft) ? state.routed_left
                                                   : state.routed_right;
  size_t best = 0;
  for (size_t k = 1; k < counts.size(); ++k) {
    if (counts[k] < counts[best]) best = k;
  }
  ++counts[best];
  return best;
}

Status Gateway::ScoreBatch(const std::string& ns,
                           const NamespaceMetrics& metrics,
                           const FeaturizedBatch& batch, size_t explain_top_k,
                           ScoreResponse* scores, StageTiming* timing,
                           std::vector<TraceStageSpan>* stage_sink,
                           std::shared_ptr<const ScorerSnapshot>* scorer_out) {
  Result<std::shared_ptr<ServingEngine>> engine = registry_.Engine(ns);
  if (!engine.ok()) {
    // A registered namespace is only unknown to the registry before its
    // first publish; surface that as a precondition, not a lookup miss.
    if (engine.status().IsNotFound()) {
      return Status::FailedPrecondition("no model published for namespace '" +
                                        ns + "'");
    }
    return engine.status();
  }
  ScoreRequest request;
  request.metric_features = &batch.features;
  request.classifier_probs = batch.probs;
  request.explain_top_k = explain_top_k;
  TraceSpan span(metrics.stage_risk, &timing->score_ms, stage_sink, "risk");
  Result<ScoreResponse> response = (*engine)->Score(request);
  span.Stop();
  if (!response.ok()) return response.status();
  *scores = response.MoveValueOrDie();
  if (scorer_out != nullptr) {
    // Best-effort for trace explanations: a publish landing mid-request can
    // make this snapshot one version newer than the one that scored; trace
    // capture re-validates column bounds before reading it.
    *scorer_out = (*engine)->snapshot();
  }
  if (metrics.pairs_scored != nullptr) {
    metrics.pairs_scored->Add(scores->risk.size());
  }
  if (metrics.risk_scores != nullptr) {
    for (double risk : scores->risk) metrics.risk_scores->Record(risk);
  }
  return Status::OK();
}

void Gateway::MaybeCaptureTrace(
    const char* api, const std::string& ns, uint64_t request_id,
    uint64_t start_ns, uint64_t total_ns,
    std::vector<TraceStageSpan> stages, size_t candidates,
    const FeaturizedBatch* batch, const ScoreResponse* scores,
    const std::shared_ptr<const ScorerSnapshot>& scorer,
    const std::vector<RecordPair>* pairs,
    const std::vector<size_t>* probe_candidates,
    const std::vector<size_t>* top_risk) {
  const TraceOptions& t = options_.trace;
  const bool head_sampled =
      t.sample_every > 0 && request_id % t.sample_every == 0;
  const bool slow = t.slow_request_ms > 0.0 &&
                    static_cast<double>(total_ns) >= t.slow_request_ms * 1e6;
  double max_risk = 0.0;
  if (scores != nullptr) {
    for (double risk : scores->risk) max_risk = std::max(max_risk, risk);
  }
  const bool high_risk = t.high_risk_threshold >= 0.0 && scores != nullptr &&
                         !scores->risk.empty() &&
                         max_risk >= t.high_risk_threshold;
  if (!head_sampled && !slow && !high_risk) return;

  // From here on the request is captured and allocation is fine — capture
  // is off the common path by construction (1-in-N plus tail triggers).
  auto trace = std::make_shared<RequestTrace>();
  trace->request_id = request_id;
  trace->api = api;
  trace->ns = ns;
  trace->model_version = scores != nullptr ? scores->model_version : 0;
  trace->start_ns = start_ns;
  trace->total_ns = total_ns;
  trace->candidates = candidates;
  trace->pairs_scored = scores != nullptr ? scores->risk.size() : 0;
  trace->max_risk = max_risk;
  trace->head_sampled = head_sampled;
  trace->slow = slow;
  trace->high_risk = high_risk;
  trace->stages = std::move(stages);

  if (scores != nullptr && batch != nullptr && !scores->risk.empty() &&
      t.top_k > 0) {
    // Top-k riskiest pairs, ties broken by original order. Reuse the
    // request's shared ranking when the caller computed one (the review
    // enqueue needs the same top of the ranking); otherwise rank here.
    const size_t k = std::min(t.top_k, scores->risk.size());
    std::vector<size_t> local_order;
    if (top_risk == nullptr || top_risk->size() < k) {
      local_order = TopRiskIndices(scores->risk, k);
      top_risk = &local_order;
    }
    const std::vector<size_t>& order = *top_risk;
    // The scorer may be one publish newer than the one that produced
    // `scores` (hot-swap mid-request); re-validate its column needs before
    // reading feature rows through its compiled plan.
    const bool can_explain =
        scorer != nullptr &&
        batch->features.cols() >= scorer->compiled().min_feature_columns();
    trace->top_risky.reserve(k);
    for (size_t rank = 0; rank < k; ++rank) {
      const size_t idx = order[rank];
      TracedDecision decision;
      if (pairs != nullptr && idx < pairs->size()) {
        decision.left = static_cast<int64_t>((*pairs)[idx].left);
        decision.right = static_cast<int64_t>((*pairs)[idx].right);
      } else if (probe_candidates != nullptr &&
                 idx < probe_candidates->size()) {
        decision.right = static_cast<int64_t>((*probe_candidates)[idx]);
      }
      decision.risk = scores->risk[idx];
      decision.classifier_prob =
          idx < batch->probs.size() ? batch->probs[idx] : 0.0;
      decision.machine_label = idx < scores->machine_label.size() &&
                               scores->machine_label[idx] != 0;
      if (can_explain) {
        decision.active_rules =
            scorer->compiled().ActiveRules(batch->features.row(idx));
        const std::vector<RiskContribution> contributions = scorer->Explain(
            decision.active_rules.data(), decision.active_rules.size(),
            decision.classifier_prob, t.top_k);
        decision.explanation.reserve(contributions.size());
        for (const RiskContribution& c : contributions) {
          decision.explanation.push_back(TraceContribution{
              c.description, c.weight, c.expectation, c.rsd});
        }
      }
      trace->top_risky.push_back(std::move(decision));
    }
  }
  traces_->Push(std::move(trace));
}

Status Gateway::EnqueueReview(NamespaceState& s, const FeaturizedBatch& batch,
                              const ScoreResponse& scores,
                              uint64_t request_id,
                              const std::vector<size_t>& top_risk,
                              const std::vector<RecordPair>* pairs,
                              const std::vector<size_t>* probe_candidates,
                              StageTiming* timing,
                              std::vector<TraceStageSpan>* stage_sink) {
  const ReviewOptions& r = options_.review;
  TraceSpan span(s.metrics.stage_review, &timing->review_ms, stage_sink,
                 "review");
  // Build the offer batch from the shared ranking: top-budget decisions at
  // or above the risk floor (the order is risk-descending, so the first
  // decision below the floor ends the scan).
  std::vector<ReviewItem> items;
  const size_t budget = std::min(r.per_request_budget, top_risk.size());
  items.reserve(budget);
  for (size_t rank = 0; rank < budget; ++rank) {
    const size_t idx = top_risk[rank];
    if (scores.risk[idx] < r.min_risk) break;
    ReviewItem item;
    if (pairs != nullptr && idx < pairs->size()) {
      item.left = static_cast<int64_t>((*pairs)[idx].left);
      item.right = static_cast<int64_t>((*pairs)[idx].right);
    } else if (probe_candidates != nullptr &&
               idx < probe_candidates->size()) {
      // Probes are not stored records: key on the candidate side alone.
      item.right = static_cast<int64_t>((*probe_candidates)[idx]);
    } else {
      continue;
    }
    item.risk = scores.risk[idx];
    item.classifier_prob = idx < batch.probs.size() ? batch.probs[idx] : 0.0;
    item.machine_label =
        idx < scores.machine_label.size() && scores.machine_label[idx] != 0
            ? 1
            : 0;
    item.model_version = scores.model_version;
    item.request_id = request_id;
    const double* row = batch.features.row(idx);
    item.features.assign(row, row + batch.features.cols());
    items.push_back(std::move(item));
  }
  if (items.empty()) return Status::OK();

  // Review mutations serialize on shard 0's writer mutex so the WAL order
  // below equals the apply order; replay then reconstructs the same queue.
  Shard& shard0 = *s.shards[0];
  std::lock_guard<std::mutex> writer(shard0.writer_mu);
  for (ReviewItem& item : items) {
    if (shard0.log != nullptr) {
      // Write-ahead, one item at a time: an offer is applied if and only if
      // its frame is durably appended, so the applied queue never runs
      // ahead of (or behind) the WAL — a crash or IO error mid-batch leaves
      // a durable, applied prefix and replay reconstructs exactly it.
      ReviewWalEvent event;
      event.kind = ReviewWalEvent::Kind::kOffer;
      event.item = item;
      const Status append = shard0.log->AppendReview(event);
      if (!append.ok()) {
        // The offer is feedback-loop observability, not the serving answer:
        // by default (fail_open) absorb the IO error — count it, skip the
        // request's remaining offers — rather than failing the resolve.
        if (!r.fail_open) return append;
        if (s.metrics.review_log_failures != nullptr) {
          s.metrics.review_log_failures->Add(1);
        }
        return Status::OK();
      }
    }
    switch (s.review->Offer(std::move(item))) {
      case ReviewQueue::Offered::kAdmitted:
        if (s.metrics.review_enqueued != nullptr) {
          s.metrics.review_enqueued->Add(1);
        }
        break;
      case ReviewQueue::Offered::kMerged:
        if (s.metrics.review_merged != nullptr) s.metrics.review_merged->Add(1);
        break;
      case ReviewQueue::Offered::kDropped:
        if (s.metrics.review_dropped != nullptr) {
          s.metrics.review_dropped->Add(1);
        }
        break;
    }
  }
  return Status::OK();
}

Result<std::vector<ReviewItem>> Gateway::DrainReview(const std::string& ns,
                                                     size_t max_items) {
  Result<std::shared_ptr<NamespaceState>> state = State(ns);
  if (!state.ok()) return state.status();
  NamespaceState& s = **state;
  if (s.review == nullptr) {
    return Status::FailedPrecondition("review is not enabled on this gateway");
  }
  Shard& shard0 = *s.shards[0];
  std::lock_guard<std::mutex> writer(shard0.writer_mu);
  if (shard0.log != nullptr) {
    // Write-ahead: log every drain frame *before* mutating the queue. The
    // writer mutex keeps other review mutations out, so the peek below is
    // exactly what DrainTop will remove. An append failure mid-batch then
    // leaves the queue untouched — no item is stranded outstanding with a
    // reviewer who never received it — and replaying any durably-logged
    // frames of the failed batch just re-drains resident pairs that the
    // post-replay requeue returns to the queue.
    const std::vector<ReviewItem> peeked = s.review->PeekTop(max_items);
    for (const ReviewItem& item : peeked) {
      ReviewWalEvent event;
      event.kind = ReviewWalEvent::Kind::kDrain;
      event.item.left = item.left;
      event.item.right = item.right;
      LEARNRISK_RETURN_NOT_OK(shard0.log->AppendReview(event));
    }
  }
  std::vector<ReviewItem> items = s.review->DrainTop(max_items);
  if (s.metrics.review_drained != nullptr && !items.empty()) {
    s.metrics.review_drained->Add(items.size());
  }
  return items;
}

Status Gateway::SubmitReviewLabel(const std::string& ns, int64_t left,
                                  int64_t right, uint8_t truth) {
  Result<std::shared_ptr<NamespaceState>> state = State(ns);
  if (!state.ok()) return state.status();
  NamespaceState& s = **state;
  if (s.review == nullptr) {
    return Status::FailedPrecondition("review is not enabled on this gateway");
  }
  Shard& shard0 = *s.shards[0];
  std::lock_guard<std::mutex> writer(shard0.writer_mu);
  // Validate first so the NotFound path never writes a frame, then log,
  // then apply: the label mutates the in-memory queue only once it is
  // durable, so an append failure leaves the pair still labelable (the
  // caller can retry) and an acked label is never lost across a crash
  // (tests/gateway_crash_recovery_test.cc). The writer mutex holds off
  // every other review mutation between the check and the apply.
  if (!s.review->CanLabel(left, right)) {
    return Status::NotFound("pair (" + std::to_string(left) + ", " +
                            std::to_string(right) +
                            ") is not awaiting a review label");
  }
  if (shard0.log != nullptr) {
    ReviewWalEvent event;
    event.kind = ReviewWalEvent::Kind::kLabel;
    event.item.left = left;
    event.item.right = right;
    event.truth = truth;
    LEARNRISK_RETURN_NOT_OK(shard0.log->AppendReview(event));
  }
  if (!s.review->Label(left, right, truth)) {
    return Status::Internal("review label for (" + std::to_string(left) +
                            ", " + std::to_string(right) +
                            ") validated but failed to apply");
  }
  if (s.metrics.review_labels != nullptr) s.metrics.review_labels->Add(1);
  return Status::OK();
}

Result<ReviewRetrainResult> Gateway::RetrainFromReview(
    const std::string& ns, const ReviewRetrainOptions& options) {
  Result<std::shared_ptr<NamespaceState>> state = State(ns);
  if (!state.ok()) return state.status();
  NamespaceState& s = **state;
  if (s.review == nullptr) {
    return Status::FailedPrecondition("review is not enabled on this gateway");
  }
  const std::vector<LabeledReview> labels = s.review->Labeled();
  if (labels.size() < std::max<size_t>(options.min_labels, 1)) {
    return Status::FailedPrecondition(
        "namespace '" + ns + "' holds " + std::to_string(labels.size()) +
        " review labels; RetrainFromReview needs at least " +
        std::to_string(options.min_labels));
  }
  // Seed from the serving snapshot: the retrain is incremental, tuning the
  // live parameters rather than refitting from the prior.
  Result<std::shared_ptr<ServingEngine>> engine = registry_.Engine(ns);
  if (!engine.ok()) {
    if (engine.status().IsNotFound()) {
      return Status::FailedPrecondition("no model published for namespace '" +
                                        ns + "'");
    }
    return engine.status();
  }
  const auto [serving_version, serving_snap] = (*engine)->VersionedSnapshot();
  if (serving_snap == nullptr) {
    return Status::FailedPrecondition("no model published for namespace '" +
                                      ns + "'");
  }

  ReviewRetrainResult result;
  Timer train_timer;
  Result<IncrementalRetrainOutput> retrained =
      RetrainFromLabels(serving_snap->model(), labels, options.retrain);
  if (!retrained.ok()) return retrained.status();
  result.train_ms = train_timer.ElapsedMillis();
  RecordMs(s.metrics.retrain_latency, result.train_ms);
  result.labels_used = retrained->labels_used;
  result.mislabeled = retrained->mislabeled;
  result.loss_history = std::move(retrained->loss_history);

  Timer publish_timer;
  std::shared_ptr<const DriftBaseline> baseline;
  if (options.refresh_drift_baseline) {
    // The label batch's feature rows are the freshest labeled sample of the
    // live distribution — they become the new drift reference, scored by
    // the *retrained* model.
    retrained->features.column_names = s.pipeline.metric_names();
    baseline = std::make_shared<DriftBaseline>(DriftBaseline::FromTraining(
        retrained->features, retrained->risk_scores));
  }
  Result<uint64_t> version =
      Publish(ns, std::move(retrained->model), std::move(baseline));
  if (!version.ok()) return version.status();
  result.model_version = *version;
  if (options.checkpoint && !options_.durability.dir.empty()) {
    // Commit the new version to the manifest so a crash after this call
    // recovers the retrained model, not the one it replaced.
    LEARNRISK_RETURN_NOT_OK(Checkpoint(ns));
  }
  result.publish_ms = publish_timer.ElapsedMillis();
  RecordMs(s.metrics.retrain_publish_latency, result.publish_ms);
  if (s.metrics.review_retrains != nullptr) s.metrics.review_retrains->Add(1);
  (void)serving_version;
  return result;
}

Result<ReviewQueueStats> Gateway::ReviewStats(const std::string& ns) const {
  Result<std::shared_ptr<NamespaceState>> state = State(ns);
  if (!state.ok()) return state.status();
  if ((*state)->review == nullptr) {
    return Status::FailedPrecondition("review is not enabled on this gateway");
  }
  return (*state)->review->Stats();
}

Result<ResolveResponse> Gateway::Resolve(const std::string& ns,
                                         const ResolveRequest& request) {
  Result<std::shared_ptr<NamespaceState>> state = State(ns);
  if (!state.ok()) return state.status();
  if (request.block_all && !request.pairs.empty()) {
    return Status::InvalidArgument(
        "ResolveRequest has both explicit pairs and block_all");
  }
  if (!request.block_all && request.pairs.empty()) {
    return Status::InvalidArgument(
        "empty ResolveRequest: provide pairs or set block_all");
  }

  const NamespaceState& s = **state;
  // One acquire load per shard pins the whole request to a frozen view;
  // writers publish successors without ever touching it.
  const std::vector<std::shared_ptr<const NamespaceSnapshot>> snaps =
      PinSnapshots(s);
  const bool sharded = snaps.size() > 1;
  ResolveResponse response;
  response.request_id = NextRequestId();
  response.timing.request_id = response.request_id;
  const bool tracing = traces_ != nullptr;
  const uint64_t start_ns = tracing ? SteadyNowNs() : 0;
  std::vector<TraceStageSpan> trace_stages;
  std::vector<TraceStageSpan>* stage_sink = tracing ? &trace_stages : nullptr;
  TraceSpan request_span(s.metrics.resolve_latency);
  {
    TraceSpan block(s.metrics.stage_block, &response.timing.blocking_ms,
                    stage_sink, "block");
    if (!request.block_all) {
      response.pairs = request.pairs;
    } else if (!sharded) {
      response.pairs = snaps[0]->index.AllCandidates();
    } else {
      std::vector<const BlockingIndex*> indexes;
      indexes.reserve(snaps.size());
      for (const auto& snap : snaps) indexes.push_back(&snap->index);
      response.pairs =
          MergedAllCandidates(indexes, &response.timing.shard_merge_ms);
    }
  }
  if (sharded) {
    // The merge phase is a sub-span of the blocking stage (already inside
    // blocking_ms), surfaced separately so shard overhead is attributable.
    RecordMs(s.metrics.stage_shard_merge, response.timing.shard_merge_ms);
    SinkStage(stage_sink, "shard_merge", response.timing.shard_merge_ms);
  }

  std::vector<const SideStore*> left_stores;
  std::vector<const SideStore*> right_stores;
  left_stores.reserve(snaps.size());
  right_stores.reserve(snaps.size());
  for (const auto& snap : snaps) {
    left_stores.push_back(&snap->left);
    right_stores.push_back(&s.right_store(*snap));
  }
  const ShardedSideView left_view(std::move(left_stores));
  const ShardedSideView right_view(std::move(right_stores));
  Result<FeaturizedBatch> batch =
      s.pipeline.RunPrepared(left_view, right_view, response.pairs);
  if (!batch.ok()) return batch.status();
  response.timing.featurize_ms = batch->featurize_ms;
  response.timing.classify_ms = batch->classify_ms;
  RecordMs(s.metrics.stage_featurize, batch->featurize_ms);
  RecordMs(s.metrics.stage_classify, batch->classify_ms);
  SinkStage(stage_sink, "featurize", batch->featurize_ms);
  SinkStage(stage_sink, "classify", batch->classify_ms);

  std::shared_ptr<const ScorerSnapshot> scorer;
  LEARNRISK_RETURN_NOT_OK(ScoreBatch(ns, s.metrics, *batch,
                                     request.explain_top_k, &response.scores,
                                     &response.timing, stage_sink,
                                     tracing ? &scorer : nullptr));
  if (!s.metrics.feature_values.empty()) {
    ObserveFeatures(batch->features, s.metrics.feature_values);
  }
  // One shared top-k pass over the decisions serves both the review
  // enqueue and the trace capture below.
  const bool reviewing =
      s.review != nullptr && options_.review.per_request_budget > 0;
  std::vector<size_t> top_risk;
  if ((reviewing || tracing) && !response.scores.risk.empty()) {
    const size_t k = std::max(reviewing ? options_.review.per_request_budget
                                        : size_t{0},
                              tracing ? options_.trace.top_k : size_t{0});
    top_risk = TopRiskIndices(response.scores.risk, k);
  }
  if (reviewing) {
    LEARNRISK_RETURN_NOT_OK(EnqueueReview(
        *(*state), *batch, response.scores, response.request_id, top_risk,
        &response.pairs, nullptr, &response.timing, stage_sink));
  }
  const uint64_t total_ns = request_span.Stop();
  if (s.metrics.resolve_requests != nullptr) s.metrics.resolve_requests->Add(1);
  if (tracing) {
    MaybeCaptureTrace("resolve", ns, response.request_id, start_ns, total_ns,
                      std::move(trace_stages), response.pairs.size(), &*batch,
                      &response.scores, scorer, &response.pairs, nullptr,
                      &top_risk);
  }
  return response;
}

Result<ProbeResponse> Gateway::ResolveRecord(const std::string& ns,
                                             const Record& probe,
                                             size_t explain_top_k) {
  Result<std::shared_ptr<NamespaceState>> state = State(ns);
  if (!state.ok()) return state.status();
  const NamespaceState& s = **state;
  if (probe.values.size() != s.schema.num_attributes()) {
    return Status::InvalidArgument(
        "probe record width does not match the namespace schema");
  }
  const std::vector<std::shared_ptr<const NamespaceSnapshot>> snaps =
      PinSnapshots(s);
  const bool sharded = snaps.size() > 1;

  ProbeResponse response;
  response.request_id = NextRequestId();
  response.timing.request_id = response.request_id;
  const bool tracing = traces_ != nullptr;
  const uint64_t start_ns = tracing ? SteadyNowNs() : 0;
  std::vector<TraceStageSpan> trace_stages;
  std::vector<TraceStageSpan>* stage_sink = tracing ? &trace_stages : nullptr;
  TraceSpan request_span(s.metrics.resolve_record_latency);
  const BlockingSide target =
      s.dedup ? BlockingSide::kLeft : BlockingSide::kRight;
  {
    TraceSpan block(s.metrics.stage_block, &response.timing.blocking_ms,
                    stage_sink, "block");
    if (!sharded) {
      response.candidates = snaps[0]->index.Candidates(probe, target);
    } else {
      std::vector<const BlockingIndex*> indexes;
      indexes.reserve(snaps.size());
      for (const auto& snap : snaps) indexes.push_back(&snap->index);
      response.candidates = MergedCandidates(
          indexes, probe, target, &response.timing.shard_merge_ms);
    }
  }
  if (sharded) {
    RecordMs(s.metrics.stage_shard_merge, response.timing.shard_merge_ms);
    SinkStage(stage_sink, "shard_merge", response.timing.shard_merge_ms);
  }

  // Probe preparation counts toward the featurize stage: it is the same
  // per-record work the prepared cache amortizes for stored records.
  Timer timer;
  const PreparedRecord prepared_probe = s.pipeline.Prepare(probe);
  const double prepare_ms = timer.ElapsedMillis();
  std::vector<const SideStore*> target_stores;
  target_stores.reserve(snaps.size());
  for (const auto& snap : snaps) {
    target_stores.push_back(&s.right_store(*snap));
  }
  const ShardedSideView target_view(std::move(target_stores));
  Result<FeaturizedBatch> batch = s.pipeline.RunProbePrepared(
      prepared_probe, target_view, response.candidates);
  if (!batch.ok()) return batch.status();
  response.timing.featurize_ms = prepare_ms + batch->featurize_ms;
  response.timing.classify_ms = batch->classify_ms;
  RecordMs(s.metrics.stage_featurize, response.timing.featurize_ms);
  RecordMs(s.metrics.stage_classify, batch->classify_ms);
  SinkStage(stage_sink, "featurize", response.timing.featurize_ms);
  SinkStage(stage_sink, "classify", batch->classify_ms);

  std::shared_ptr<const ScorerSnapshot> scorer;
  LEARNRISK_RETURN_NOT_OK(ScoreBatch(ns, s.metrics, *batch, explain_top_k,
                                     &response.scores, &response.timing,
                                     stage_sink,
                                     tracing ? &scorer : nullptr));
  if (!s.metrics.feature_values.empty()) {
    ObserveFeatures(batch->features, s.metrics.feature_values);
  }
  const bool reviewing =
      s.review != nullptr && options_.review.per_request_budget > 0;
  std::vector<size_t> top_risk;
  if ((reviewing || tracing) && !response.scores.risk.empty()) {
    const size_t k = std::max(reviewing ? options_.review.per_request_budget
                                        : size_t{0},
                              tracing ? options_.trace.top_k : size_t{0});
    top_risk = TopRiskIndices(response.scores.risk, k);
  }
  if (reviewing) {
    LEARNRISK_RETURN_NOT_OK(EnqueueReview(
        *(*state), *batch, response.scores, response.request_id, top_risk,
        nullptr, &response.candidates, &response.timing, stage_sink));
  }
  const uint64_t total_ns = request_span.Stop();
  if (s.metrics.resolve_record_requests != nullptr) {
    s.metrics.resolve_record_requests->Add(1);
  }
  if (tracing) {
    MaybeCaptureTrace("resolve_record", ns, response.request_id, start_ns,
                      total_ns, std::move(trace_stages),
                      response.candidates.size(), &*batch, &response.scores,
                      scorer, nullptr, &response.candidates, &top_risk);
  }
  return response;
}

Status Gateway::AddRecord(const std::string& ns, BlockingSide side,
                          Record record, int64_t entity_id,
                          StageTiming* timing) {
  StageTiming local_timing;
  if (timing == nullptr) {
    timing = &local_timing;
  } else {
    *timing = StageTiming{};
  }
  Result<std::shared_ptr<NamespaceState>> state = State(ns);
  if (!state.ok()) return state.status();
  NamespaceState& s = **state;
  if (record.values.size() != s.schema.num_attributes()) {
    return Status::InvalidArgument(
        "record width does not match the namespace schema");
  }
  timing->request_id = NextRequestId();
  const bool tracing = traces_ != nullptr;
  const uint64_t start_ns = tracing ? SteadyNowNs() : 0;
  std::vector<TraceStageSpan> trace_stages;
  std::vector<TraceStageSpan>* stage_sink = tracing ? &trace_stages : nullptr;
  // Route to the owning shard (always shard 0 when unsharded), then
  // serialize only with that shard's writers; readers keep serving the
  // current snapshots throughout, and writers to sibling shards proceed in
  // parallel. The successor snapshot shares every existing segment —
  // building it touches only the new tail.
  Shard& shard = *s.shards[RouteShard(s, side)];
  std::lock_guard<std::mutex> writer(shard.writer_mu);
  if (shard.log != nullptr) {
    // Write-ahead: the record hits the WAL (flushed) before any reader can
    // see it, so every acknowledged AddRecord survives a crash. A crash
    // after this append but before the return below leaves a durable but
    // unacknowledged record — recovery may legitimately hold one more
    // record than the caller saw acknowledged.
    WalEntry entry;
    entry.side = side;
    entry.entity_id = entity_id;
    entry.record = record;
    TraceSpan span(s.metrics.stage_wal_append, &timing->wal_append_ms,
                   stage_sink, "wal_append");
    LEARNRISK_RETURN_NOT_OK(shard.log->Append(entry));
  }
  TraceSpan publish_span(s.metrics.stage_publish, &timing->publish_ms,
                         stage_sink, "publish");
  const std::shared_ptr<const NamespaceSnapshot> cur = LoadShardSnapshot(shard);
  auto next = std::make_shared<NamespaceSnapshot>();
  next->index = cur->index;  // shares posting segments
  LEARNRISK_RETURN_NOT_OK(next->index.AddRecord(side, record, entity_id));
  const bool to_left = s.dedup || side == BlockingSide::kLeft;
  next->left = to_left ? cur->left.WithAppended(std::move(record), entity_id,
                                                s.pipeline.suite())
                       : cur->left;
  if (!s.dedup) {
    next->right = to_left ? cur->right
                          : cur->right.WithAppended(std::move(record),
                                                    entity_id,
                                                    s.pipeline.suite());
  }
  // Single publication point: readers see the shard fully without the
  // record (old snapshot) or fully with it (this one), never in between.
  std::atomic_store_explicit(&shard.snapshot,
                             std::shared_ptr<const NamespaceSnapshot>(next),
                             std::memory_order_release);
  publish_span.Stop();
  if (s.metrics.records_added != nullptr) s.metrics.records_added->Add(1);
  if (tracing) {
    // AddRecord has no latency histogram of its own; the trace's total is
    // the sum of its measured stages plus the bookkeeping around them.
    const uint64_t total_ns = SteadyNowNs() - start_ns;
    MaybeCaptureTrace("add_record", ns, timing->request_id, start_ns,
                      total_ns, std::move(trace_stages), /*candidates=*/0,
                      nullptr, nullptr, nullptr, nullptr, nullptr);
  }
  if (shard.log != nullptr &&
      options_.durability.wal_checkpoint_threshold > 0 &&
      shard.log->wal_entries_since_checkpoint() >=
          options_.durability.wal_checkpoint_threshold) {
    // The record is already published and durable; a checkpoint failure
    // here fails the call without retracting it (the WAL still covers it).
    // The threshold applies per shard — each shard's WAL/checkpoint cycle
    // is independent.
    LEARNRISK_RETURN_NOT_OK(CheckpointLocked(ns, s, shard));
  }
  return Status::OK();
}

Status Gateway::CheckpointLocked(const std::string& ns, NamespaceState& s,
                                 Shard& shard) {
  TraceSpan span(s.metrics.checkpoint_latency);
  // Materialize the shard's current snapshot under its writer_mu: no new
  // record can land between the tables written to disk and the WAL the
  // checkpoint resets, so checkpoint + empty WAL is exactly the published
  // shard state.
  const std::shared_ptr<const NamespaceSnapshot> snap =
      LoadShardSnapshot(shard);
  const Table left = snap->left.Materialize(s.schema);
  Table right;
  if (!s.dedup) right = snap->right.Materialize(s.schema);

  uint64_t model_version = 0;
  std::shared_ptr<const ScorerSnapshot> model_snap;
  Result<std::shared_ptr<ServingEngine>> engine = registry_.Engine(ns);
  if (engine.ok()) {
    // One consistent read: the saved model file is exactly the version the
    // manifest records, even if a publish lands mid-checkpoint. Every shard
    // checkpoint saves the model it observed; sharded recovery re-publishes
    // the newest version any shard recorded.
    std::tie(model_version, model_snap) = (*engine)->VersionedSnapshot();
  } else if (!engine.status().IsNotFound()) {
    return engine.status();
  }
  NamespaceLog::ModelSaver saver;
  if (model_version > 0 && model_snap != nullptr) {
    saver = [model_snap](const std::string& path) {
      return SaveRiskModel(model_snap->model(), path);
    };
  } else {
    model_version = 0;
  }
  // Review state is namespace-level and rides on shard 0's log. Its
  // mutations all serialize on shard 0's writer_mu — held here — so the
  // snapshot is exactly the state whose WAL events the checkpoint retires.
  ReviewQueue::CheckpointState review_state;
  const ReviewQueue::CheckpointState* review = nullptr;
  if (s.review != nullptr && &shard == s.shards[0].get()) {
    review_state = s.review->Snapshot();
    review = &review_state;
  }
  return shard.log->WriteCheckpoint(left, s.dedup ? nullptr : &right,
                                    model_version, saver, review);
}

Status Gateway::Checkpoint(const std::string& ns) {
  Result<std::shared_ptr<NamespaceState>> state = State(ns);
  if (!state.ok()) return state.status();
  NamespaceState& s = **state;
  // Shard by shard: each commit is atomic on its own manifest, and writers
  // to shards not currently checkpointing proceed untouched.
  for (const auto& shard : s.shards) {
    std::lock_guard<std::mutex> writer(shard->writer_mu);
    if (shard->log == nullptr) {
      return Status::FailedPrecondition(
          "durability is not enabled for namespace '" + ns + "'");
    }
    LEARNRISK_RETURN_NOT_OK(CheckpointLocked(ns, s, *shard));
  }
  return Status::OK();
}

Status Gateway::RecoverNamespace(const std::string& ns,
                                 RecoverNamespaceSpec spec) {
  if (options_.durability.dir.empty()) {
    return Status::FailedPrecondition(
        "durability is not enabled on this gateway");
  }
  if (!ModelRegistry::ValidNamespace(ns)) {
    return Status::InvalidArgument("invalid namespace '" + ns + "'");
  }
  if (spec.suite.num_metrics() == 0) {
    return Status::InvalidArgument("recover spec has an empty metric suite");
  }
  if (spec.classifier == nullptr) {
    return Status::InvalidArgument("recover spec has no classifier");
  }
  for (size_t c : spec.classifier_columns) {
    if (c >= spec.suite.num_metrics()) {
      return Status::InvalidArgument("classifier column out of range");
    }
  }
  if (spec.blocking.key_attribute >= spec.schema.num_attributes()) {
    return Status::InvalidArgument("blocking key attribute out of range");
  }
  if (HasNamespace(ns)) {
    return Status::FailedPrecondition("namespace '" + ns +
                                      "' already registered");
  }

  Timer recover_timer;
  // The SHARDS meta file decides the layout: absent = the original
  // single-log namespace, present = one full NamespaceLog per shard.
  Result<size_t> shards_meta =
      ReadShardsFile(ShardsFilePath(options_.durability, ns));
  if (!shards_meta.ok()) return shards_meta.status();
  const size_t num_shards = std::max<size_t>(*shards_meta, 1);

  // Recover every shard's log up front (shard 0 is the whole namespace in
  // the unsharded layout), then rebuild the snapshots from the recovered
  // tables exactly as registration builds them from a spec's sub-tables —
  // same base-segment bulk load, so every query output is bit-identical to
  // a gateway that added the same records and never crashed.
  const DurabilityOptions shard_opts =
      ShardDurability(options_.durability, ns);
  std::vector<RecoveredNamespace> recovered(num_shards);
  std::vector<std::unique_ptr<NamespaceLog>> logs;
  for (size_t k = 0; k < num_shards; ++k) {
    Result<std::unique_ptr<NamespaceLog>> log =
        *shards_meta == 0
            ? NamespaceLog::Recover(options_.durability, ns, spec.schema,
                                    &recovered[k])
            : NamespaceLog::Recover(shard_opts, ShardLogName(k), spec.schema,
                                    &recovered[k]);
    if (!log.ok()) return log.status();
    if (k > 0 && recovered[k].dedup != recovered[0].dedup) {
      return Status::InvalidArgument(
          "shard manifests of namespace '" + ns +
          "' disagree on dedup semantics");
    }
    logs.push_back(log.MoveValueOrDie());
  }

  auto state = std::make_shared<NamespaceState>();
  state->dedup = recovered[0].dedup;
  state->num_shards = num_shards;
  state->schema = spec.schema;
  state->pipeline =
      FeaturePipeline(std::move(spec.suite), std::move(spec.classifier),
                      std::move(spec.classifier_columns));
  state->pipeline.set_parallelism(options_.request_parallelism);
  state->routed_left.assign(num_shards, 0);
  state->routed_right.assign(num_shards, 0);
  for (size_t k = 0; k < num_shards; ++k) {
    const RecoveredNamespace& rec = recovered[k];
    Result<BlockingIndex> index = BlockingIndex::Build(
        rec.left, rec.dedup ? rec.left : rec.right, spec.blocking);
    if (!index.ok()) return index.status();
    auto snapshot = std::make_shared<NamespaceSnapshot>();
    snapshot->index = index.MoveValueOrDie();
    snapshot->left = SideStore::Build(rec.left, state->pipeline.suite());
    if (!rec.dedup) {
      snapshot->right = SideStore::Build(rec.right, state->pipeline.suite());
    }
    auto shard = std::make_unique<Shard>();
    shard->snapshot = std::move(snapshot);
    shard->log = std::move(logs[k]);
    state->shards.push_back(std::move(shard));
    // Seed the writer routing at the recovered per-shard sizes; the
    // least-loaded argmin naturally refills shards that recovered uneven.
    state->routed_left[k] = rec.left.num_records();
    if (!rec.dedup) state->routed_right[k] = rec.right.num_records();
  }
  if (options_.enable_metrics) {
    state->metrics = CreateNamespaceMetrics(ns, state->pipeline.metric_names());
    for (const auto& shard : state->shards) {
      shard->log->set_metrics(state->metrics.durability);
    }
  }
  if (options_.review.enabled) {
    // Rebuild the review queue: seed the checkpointed state (shard 0 owns
    // it) with resident and outstanding items in their original stages —
    // outstanding items do not occupy resident capacity, so replay runs
    // against the exact occupancy the live queue had — then replay the
    // WAL's review events in log order. Offers replay without the capacity
    // drop (OfferReplay): a durably-logged offer is always admitted or
    // merged, so every logged drain/label that follows finds its pair and
    // no acked label can be lost to a replay-time displacement. A
    // drain/label that still misses (a duplicate frame from an
    // ambiguously-failed append) is tolerated and counted. Finally,
    // still-outstanding items fold back into the queue: their reviewer died
    // with the process, and re-draining beats losing them.
    state->review =
        std::make_shared<ReviewQueue>(options_.review.queue_capacity);
    state->review->Seed(std::move(recovered[0].review_queued),
                        std::move(recovered[0].review_outstanding),
                        std::move(recovered[0].review_labeled));
    size_t replay_misses = 0;
    for (ReviewWalEvent& event : recovered[0].review_events) {
      switch (event.kind) {
        case ReviewWalEvent::Kind::kOffer:
          state->review->OfferReplay(std::move(event.item));
          break;
        case ReviewWalEvent::Kind::kDrain:
          if (!state->review->MarkDrained(event.item.left, event.item.right)) {
            ++replay_misses;
          }
          break;
        case ReviewWalEvent::Kind::kLabel:
          if (!state->review->Label(event.item.left, event.item.right,
                                    event.truth)) {
            ++replay_misses;
          }
          break;
      }
    }
    state->review->RequeueOutstanding();
    if (replay_misses > 0 && state->metrics.review_replay_misses != nullptr) {
      state->metrics.review_replay_misses->Add(replay_misses);
    }
  }

  // Re-publish the newest checkpointed model any shard recorded, under its
  // recorded version: seeding the floor at version - 1 makes the publish
  // below yield exactly that version, so scores keep reporting the same
  // model_version across the restart. (A publish landing mid-checkpoint can
  // leave shards one version apart; the newest wins.)
  size_t model_shard = 0;
  for (size_t k = 1; k < num_shards; ++k) {
    if (recovered[k].model_version > recovered[model_shard].model_version) {
      model_shard = k;
    }
  }
  if (recovered[model_shard].model_version > 0) {
    Result<RiskModel> model = LoadRiskModel(recovered[model_shard].model_path);
    if (!model.ok()) return model.status();
    registry_.EnsureVersionAtLeast(ns,
                                   recovered[model_shard].model_version - 1);
    Result<uint64_t> published = registry_.Publish(ns, model.MoveValueOrDie());
    if (!published.ok()) return published.status();
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!namespaces_.emplace(ns, state).second) {
      return Status::FailedPrecondition("namespace '" + ns +
                                        "' already registered");
    }
  }
  if (options_.enable_metrics) {
    RegisterStateGauges(ns, state);
    RecordMs(state->metrics.recover_latency, recover_timer.ElapsedMillis());
    state->metrics.recoveries->Add(1);
    for (const RecoveredNamespace& rec : recovered) {
      state->metrics.recovered_wal_entries->Add(rec.wal_entries_replayed);
      state->metrics.recovered_wal_bytes_discarded->Add(
          rec.wal_bytes_discarded);
    }
  }
  return Status::OK();
}

Result<size_t> Gateway::WalEntriesSinceCheckpoint(const std::string& ns) {
  Result<std::shared_ptr<NamespaceState>> state = State(ns);
  if (!state.ok()) return state.status();
  NamespaceState& s = **state;
  size_t total = 0;
  for (const auto& shard : s.shards) {
    std::lock_guard<std::mutex> writer(shard->writer_mu);
    if (shard->log == nullptr) {
      return Status::FailedPrecondition(
          "durability is not enabled for namespace '" + ns + "'");
    }
    total += shard->log->wal_entries_since_checkpoint();
  }
  return total;
}

Result<size_t> Gateway::NumRecords(const std::string& ns,
                                   BlockingSide side) const {
  Result<std::shared_ptr<NamespaceState>> state = State(ns);
  if (!state.ok()) return state.status();
  size_t total = 0;
  for (const auto& shard : (*state)->shards) {
    total += LoadShardSnapshot(*shard)->index.num_records(side);
  }
  return total;
}

}  // namespace learnrisk
