// Copyright 2026 The LearnRisk Authors

#include "gateway/gateway.h"

#include <utility>

#include "common/timer.h"

namespace learnrisk {

Gateway::Gateway(GatewayOptions options)
    : options_(options), registry_(options.registry) {}

Status Gateway::RegisterNamespace(const std::string& ns, NamespaceSpec spec) {
  if (!ModelRegistry::ValidNamespace(ns)) {
    return Status::InvalidArgument("invalid namespace '" + ns + "'");
  }
  if (spec.left == nullptr) {
    return Status::InvalidArgument("namespace spec has no left table");
  }
  const bool dedup = spec.right == nullptr || spec.right == spec.left;
  if (!dedup && !spec.left->schema().Equals(spec.right->schema())) {
    return Status::InvalidArgument(
        "left and right tables have different schemas");
  }
  if (spec.suite.num_metrics() == 0) {
    return Status::InvalidArgument("namespace spec has an empty metric suite");
  }
  if (spec.classifier == nullptr) {
    return Status::InvalidArgument("namespace spec has no classifier");
  }
  for (size_t c : spec.classifier_columns) {
    if (c >= spec.suite.num_metrics()) {
      return Status::InvalidArgument("classifier column out of range");
    }
  }
  if (spec.blocking.key_attribute >= spec.left->schema().num_attributes()) {
    return Status::InvalidArgument("blocking key attribute out of range");
  }
  if (HasNamespace(ns)) {
    // Checked again at the emplace below (the build is lock-free and could
    // race another registration); this early exit just avoids copying the
    // tables and building the blocking index for a name that's taken.
    return Status::FailedPrecondition("namespace '" + ns +
                                      "' already registered");
  }

  auto state = std::make_shared<NamespaceState>();
  state->dedup = dedup;
  // The gateway owns mutable copies so AddRecord can grow the namespace
  // online without touching the caller's tables.
  state->left = *spec.left;
  if (!dedup) state->right = *spec.right;
  Result<BlockingIndex> index = BlockingIndex::Build(
      state->left, dedup ? state->left : state->right, spec.blocking);
  if (!index.ok()) return index.status();
  state->index = index.MoveValueOrDie();
  state->pipeline =
      FeaturePipeline(std::move(spec.suite), std::move(spec.classifier),
                      std::move(spec.classifier_columns));
  state->left_prepared =
      PreparedTable::Build(state->left, state->pipeline.suite());
  if (!dedup) {
    state->right_prepared =
        PreparedTable::Build(state->right, state->pipeline.suite());
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (!namespaces_.emplace(ns, std::move(state)).second) {
    return Status::FailedPrecondition("namespace '" + ns +
                                      "' already registered");
  }
  return Status::OK();
}

bool Gateway::HasNamespace(const std::string& ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  return namespaces_.count(ns) > 0;
}

std::vector<std::string> Gateway::Namespaces() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(namespaces_.size());
  for (const auto& [ns, state] : namespaces_) names.push_back(ns);
  return names;
}

Result<uint64_t> Gateway::Publish(const std::string& ns, RiskModel model) {
  if (!HasNamespace(ns)) {
    return Status::NotFound("unknown namespace '" + ns + "'");
  }
  return registry_.Publish(ns, std::move(model));
}

Result<std::shared_ptr<Gateway::NamespaceState>> Gateway::State(
    const std::string& ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = namespaces_.find(ns);
  if (it == namespaces_.end()) {
    return Status::NotFound("unknown namespace '" + ns + "'");
  }
  return it->second;
}

Status Gateway::ScoreBatch(const std::string& ns,
                           const FeaturizedBatch& batch, size_t explain_top_k,
                           ScoreResponse* scores, StageTiming* timing) {
  Result<std::shared_ptr<ServingEngine>> engine = registry_.Engine(ns);
  if (!engine.ok()) {
    // A registered namespace is only unknown to the registry before its
    // first publish; surface that as a precondition, not a lookup miss.
    if (engine.status().IsNotFound()) {
      return Status::FailedPrecondition("no model published for namespace '" +
                                        ns + "'");
    }
    return engine.status();
  }
  ScoreRequest request;
  request.metric_features = &batch.features;
  request.classifier_probs = batch.probs;
  request.explain_top_k = explain_top_k;
  Timer timer;
  Result<ScoreResponse> response = (*engine)->Score(request);
  timing->score_ms = timer.ElapsedMillis();
  if (!response.ok()) return response.status();
  *scores = response.MoveValueOrDie();
  return Status::OK();
}

Result<ResolveResponse> Gateway::Resolve(const std::string& ns,
                                         const ResolveRequest& request) {
  Result<std::shared_ptr<NamespaceState>> state = State(ns);
  if (!state.ok()) return state.status();
  if (request.block_all && !request.pairs.empty()) {
    return Status::InvalidArgument(
        "ResolveRequest has both explicit pairs and block_all");
  }
  if (!request.block_all && request.pairs.empty()) {
    return Status::InvalidArgument(
        "empty ResolveRequest: provide pairs or set block_all");
  }

  NamespaceState& s = **state;
  std::shared_lock<std::shared_mutex> lock(s.mu);
  ResolveResponse response;
  Timer timer;
  response.pairs =
      request.block_all ? s.index.AllCandidates() : request.pairs;
  response.timing.blocking_ms = timer.ElapsedMillis();

  timer.Reset();
  Result<FeaturizedBatch> batch = s.pipeline.RunPrepared(
      s.left_prepared, s.right_prepared_table(), response.pairs);
  if (!batch.ok()) return batch.status();
  response.timing.featurize_ms = timer.ElapsedMillis();

  // The batch is self-contained and scoring only touches the registry, so
  // release the namespace lock before the score stage: a slow model never
  // delays AddRecord writers.
  lock.unlock();
  LEARNRISK_RETURN_NOT_OK(ScoreBatch(ns, *batch, request.explain_top_k,
                                     &response.scores, &response.timing));
  return response;
}

Result<ProbeResponse> Gateway::ResolveRecord(const std::string& ns,
                                             const Record& probe,
                                             size_t explain_top_k) {
  Result<std::shared_ptr<NamespaceState>> state = State(ns);
  if (!state.ok()) return state.status();
  NamespaceState& s = **state;
  std::shared_lock<std::shared_mutex> lock(s.mu);
  if (probe.values.size() != s.left.schema().num_attributes()) {
    return Status::InvalidArgument(
        "probe record width does not match the namespace schema");
  }

  ProbeResponse response;
  Timer timer;
  response.candidates = s.index.Candidates(
      probe, s.dedup ? BlockingSide::kLeft : BlockingSide::kRight);
  response.timing.blocking_ms = timer.ElapsedMillis();

  timer.Reset();
  const PreparedRecord prepared_probe = s.pipeline.Prepare(probe);
  Result<FeaturizedBatch> batch = s.pipeline.RunProbePrepared(
      prepared_probe, s.right_prepared_table(), response.candidates);
  if (!batch.ok()) return batch.status();
  response.timing.featurize_ms = timer.ElapsedMillis();

  lock.unlock();  // scoring only touches the registry (see Resolve)
  LEARNRISK_RETURN_NOT_OK(ScoreBatch(ns, *batch, explain_top_k,
                                     &response.scores, &response.timing));
  return response;
}

Status Gateway::AddRecord(const std::string& ns, BlockingSide side,
                          Record record, int64_t entity_id) {
  Result<std::shared_ptr<NamespaceState>> state = State(ns);
  if (!state.ok()) return state.status();
  NamespaceState& s = **state;
  std::unique_lock<std::shared_mutex> lock(s.mu);
  Table& target =
      s.dedup || side == BlockingSide::kLeft ? s.left : s.right;
  if (record.values.size() != target.schema().num_attributes()) {
    return Status::InvalidArgument(
        "record width does not match the namespace schema");
  }
  // Index first (it validates the key attribute against the record), then
  // prepared cache, then append; the width check above makes the append
  // infallible, so the three structures cannot diverge.
  LEARNRISK_RETURN_NOT_OK(s.index.AddRecord(side, record, entity_id));
  PreparedTable& target_prepared = s.dedup || side == BlockingSide::kLeft
                                       ? s.left_prepared
                                       : s.right_prepared;
  target_prepared.Append(record, s.pipeline.suite());
  return target.Append(std::move(record), entity_id);
}

Result<size_t> Gateway::NumRecords(const std::string& ns,
                                   BlockingSide side) const {
  Result<std::shared_ptr<NamespaceState>> state = State(ns);
  if (!state.ok()) return state.status();
  NamespaceState& s = **state;
  std::shared_lock<std::shared_mutex> lock(s.mu);
  return s.index.num_records(side);
}

}  // namespace learnrisk
