// Copyright 2026 The LearnRisk Authors

#include "classifier/logistic.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math_util.h"

namespace learnrisk {

LogisticClassifier::LogisticClassifier(LogisticOptions options)
    : options_(options) {}

Status LogisticClassifier::Train(const FeatureMatrix& features,
                                 const std::vector<uint8_t>& labels) {
  if (features.rows() != labels.size()) {
    return Status::InvalidArgument("feature rows != label count");
  }
  if (features.rows() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  const size_t n = features.rows();
  const size_t d = features.cols();

  feature_mean_.assign(d, 0.0);
  feature_std_.assign(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) feature_mean_[j] += features.at(i, j);
  }
  for (size_t j = 0; j < d; ++j) feature_mean_[j] /= static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      const double delta = features.at(i, j) - feature_mean_[j];
      feature_std_[j] += delta * delta;
    }
  }
  for (size_t j = 0; j < d; ++j) {
    feature_std_[j] = std::sqrt(feature_std_[j] / static_cast<double>(n));
    if (feature_std_[j] < 1e-8) feature_std_[j] = 1.0;
  }

  double pos_weight = options_.positive_weight;
  if (pos_weight <= 0.0) {
    size_t n_pos = 0;
    for (uint8_t y : labels) n_pos += y;
    const size_t n_neg = n - n_pos;
    pos_weight = n_pos > 0
                     ? std::max(1.0, static_cast<double>(n_neg) /
                                         static_cast<double>(n_pos))
                     : 1.0;
    pos_weight = std::min(pos_weight, 50.0);
  }

  w_.assign(d, 0.0);
  b_ = 0.0;
  std::vector<double> x(d);
  std::vector<double> gw(d);
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    std::fill(gw.begin(), gw.end(), 0.0);
    double gb = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double z = b_;
      for (size_t j = 0; j < d; ++j) {
        x[j] = (features.at(i, j) - feature_mean_[j]) / feature_std_[j];
        z += w_[j] * x[j];
      }
      const double p = Sigmoid(z);
      const double y = labels[i] ? 1.0 : 0.0;
      const double wy = labels[i] ? pos_weight : 1.0;
      const double delta = wy * (p - y);
      for (size_t j = 0; j < d; ++j) gw[j] += delta * x[j];
      gb += delta;
    }
    const double inv_n = 1.0 / static_cast<double>(n);
    for (size_t j = 0; j < d; ++j) {
      w_[j] -= options_.learning_rate *
               (gw[j] * inv_n + options_.l2 * w_[j]);
    }
    b_ -= options_.learning_rate * gb * inv_n;
  }
  return Status::OK();
}

double LogisticClassifier::PredictProba(const double* features,
                                        size_t n) const {
  assert(n == w_.size() && "feature dimension mismatch");
  double z = b_;
  for (size_t j = 0; j < n; ++j) {
    z += w_[j] * (features[j] - feature_mean_[j]) / feature_std_[j];
  }
  return Sigmoid(z);
}

}  // namespace learnrisk
