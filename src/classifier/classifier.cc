// Copyright 2026 The LearnRisk Authors

#include "classifier/classifier.h"

namespace learnrisk {

std::vector<double> BinaryClassifier::PredictProbaAll(
    const FeatureMatrix& features) const {
  std::vector<double> probs(features.rows());
  for (size_t i = 0; i < features.rows(); ++i) {
    probs[i] = PredictProba(features.row(i), features.cols());
  }
  return probs;
}

std::vector<uint8_t> BinaryClassifier::PredictAll(
    const FeatureMatrix& features) const {
  std::vector<uint8_t> labels(features.rows());
  for (size_t i = 0; i < features.rows(); ++i) {
    labels[i] =
        PredictProba(features.row(i), features.cols()) >= 0.5 ? 1 : 0;
  }
  return labels;
}

}  // namespace learnrisk
