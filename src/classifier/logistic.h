// Copyright 2026 The LearnRisk Authors
// Logistic regression classifier: the simple linear baseline alternative to
// the MLP, useful for ablations and the fast inner loops of active learning.

#ifndef LEARNRISK_CLASSIFIER_LOGISTIC_H_
#define LEARNRISK_CLASSIFIER_LOGISTIC_H_

#include <cstdint>
#include <vector>

#include "classifier/classifier.h"

namespace learnrisk {

/// \brief Logistic regression hyperparameters.
struct LogisticOptions {
  size_t epochs = 200;
  double learning_rate = 0.1;
  double l2 = 1e-4;
  /// Loss weight for positive examples; 0 selects n_neg / n_pos.
  double positive_weight = 0.0;
  uint64_t seed = 1;
};

/// \brief L2-regularized logistic regression trained by full-batch gradient
/// descent on standardized features.
class LogisticClassifier : public BinaryClassifier {
 public:
  explicit LogisticClassifier(LogisticOptions options = {});

  Status Train(const FeatureMatrix& features,
               const std::vector<uint8_t>& labels) override;

  double PredictProba(const double* features, size_t n) const override;

  const std::vector<double>& weights() const { return w_; }
  double bias() const { return b_; }

 private:
  LogisticOptions options_;
  std::vector<double> w_;
  double b_ = 0.0;
  std::vector<double> feature_mean_;
  std::vector<double> feature_std_;
};

}  // namespace learnrisk

#endif  // LEARNRISK_CLASSIFIER_LOGISTIC_H_
