// Copyright 2026 The LearnRisk Authors

#include "classifier/mlp.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math_util.h"

namespace learnrisk {
namespace {

constexpr double kAdamBeta1 = 0.9;
constexpr double kAdamBeta2 = 0.999;
constexpr double kAdamEps = 1e-8;

}  // namespace

MlpClassifier::MlpClassifier(MlpOptions options)
    : options_(std::move(options)) {}

void MlpClassifier::InitLayers(size_t input_dim, Rng* rng) {
  layers_.clear();
  adam_step_ = 0;
  std::vector<size_t> dims;
  dims.push_back(input_dim);
  for (size_t h : options_.hidden) dims.push_back(h);
  dims.push_back(1);
  for (size_t l = 0; l + 1 < dims.size(); ++l) {
    Layer layer;
    layer.in = dims[l];
    layer.out = dims[l + 1];
    layer.w.resize(layer.in * layer.out);
    layer.b.assign(layer.out, 0.0);
    // He initialization for the ReLU stack.
    const double scale = std::sqrt(2.0 / static_cast<double>(layer.in));
    for (double& w : layer.w) w = rng->Normal() * scale;
    layer.mw.assign(layer.w.size(), 0.0);
    layer.vw.assign(layer.w.size(), 0.0);
    layer.mb.assign(layer.b.size(), 0.0);
    layer.vb.assign(layer.b.size(), 0.0);
    layers_.push_back(std::move(layer));
  }
}

double MlpClassifier::Forward(const double* x,
                              std::vector<std::vector<double>>* acts) const {
  std::vector<double> cur(feature_mean_.size());
  for (size_t i = 0; i < cur.size(); ++i) {
    cur[i] = (x[i] - feature_mean_[i]) / feature_std_[i];
  }
  if (acts != nullptr) acts->push_back(cur);
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    std::vector<double> next(layer.out, 0.0);
    for (size_t o = 0; o < layer.out; ++o) {
      double z = layer.b[o];
      const double* wrow = layer.w.data() + o * layer.in;
      for (size_t i = 0; i < layer.in; ++i) z += wrow[i] * cur[i];
      const bool is_output = l + 1 == layers_.size();
      next[o] = is_output ? z : std::max(z, 0.0);
    }
    cur = std::move(next);
    if (acts != nullptr) acts->push_back(cur);
  }
  return Sigmoid(cur[0]);
}

Status MlpClassifier::Train(const FeatureMatrix& features,
                            const std::vector<uint8_t>& labels) {
  if (features.rows() != labels.size()) {
    return Status::InvalidArgument("feature rows != label count");
  }
  if (features.rows() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  const size_t n = features.rows();
  const size_t d = features.cols();

  // Per-feature standardization statistics.
  feature_mean_.assign(d, 0.0);
  feature_std_.assign(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) feature_mean_[j] += features.at(i, j);
  }
  for (size_t j = 0; j < d; ++j) feature_mean_[j] /= static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      const double delta = features.at(i, j) - feature_mean_[j];
      feature_std_[j] += delta * delta;
    }
  }
  for (size_t j = 0; j < d; ++j) {
    feature_std_[j] = std::sqrt(feature_std_[j] / static_cast<double>(n));
    if (feature_std_[j] < 1e-8) feature_std_[j] = 1.0;
  }

  double pos_weight = options_.positive_weight;
  if (pos_weight <= 0.0) {
    size_t n_pos = 0;
    for (uint8_t y : labels) n_pos += y;
    const size_t n_neg = n - n_pos;
    pos_weight = n_pos > 0
                     ? std::max(1.0, static_cast<double>(n_neg) /
                                         static_cast<double>(n_pos))
                     : 1.0;
    pos_weight = std::min(pos_weight, 50.0);
  }

  Rng rng(options_.seed);
  InitLayers(d, &rng);

  // Gradient accumulators mirroring the layer parameters.
  std::vector<std::vector<double>> gw(layers_.size());
  std::vector<std::vector<double>> gb(layers_.size());
  for (size_t l = 0; l < layers_.size(); ++l) {
    gw[l].assign(layers_[l].w.size(), 0.0);
    gb[l].assign(layers_[l].b.size(), 0.0);
  }

  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    size_t batch_start = 0;
    while (batch_start < n) {
      const size_t batch_end =
          std::min(batch_start + options_.batch_size, n);
      const double batch_n = static_cast<double>(batch_end - batch_start);
      for (auto& g : gw) std::fill(g.begin(), g.end(), 0.0);
      for (auto& g : gb) std::fill(g.begin(), g.end(), 0.0);

      for (size_t bi = batch_start; bi < batch_end; ++bi) {
        const size_t idx = order[bi];
        std::vector<std::vector<double>> acts;
        const double p = Forward(features.row(idx), &acts);
        const double y = labels[idx] ? 1.0 : 0.0;
        const double wy = labels[idx] ? pos_weight : 1.0;
        epoch_loss += -wy * (y * std::log(std::max(p, 1e-12)) +
                             (1.0 - y) * std::log(std::max(1.0 - p, 1e-12)));

        // delta at the output pre-activation.
        std::vector<double> delta = {wy * (p - y)};
        for (size_t l = layers_.size(); l-- > 0;) {
          const Layer& layer = layers_[l];
          const std::vector<double>& input = acts[l];
          for (size_t o = 0; o < layer.out; ++o) {
            gb[l][o] += delta[o];
            double* grow = gw[l].data() + o * layer.in;
            for (size_t i = 0; i < layer.in; ++i) {
              grow[i] += delta[o] * input[i];
            }
          }
          if (l == 0) break;
          std::vector<double> prev_delta(layer.in, 0.0);
          for (size_t i = 0; i < layer.in; ++i) {
            if (acts[l][i] <= 0.0) continue;  // ReLU gate of layer l-1 output
            double g = 0.0;
            for (size_t o = 0; o < layer.out; ++o) {
              g += layers_[l].w[o * layer.in + i] * delta[o];
            }
            prev_delta[i] = g;
          }
          delta = std::move(prev_delta);
        }
      }

      // One Adam step on the averaged batch gradient (+ L2).
      ++adam_step_;
      const double t = static_cast<double>(adam_step_);
      const double bias1 = 1.0 - std::pow(kAdamBeta1, t);
      const double bias2 = 1.0 - std::pow(kAdamBeta2, t);
      for (size_t l = 0; l < layers_.size(); ++l) {
        Layer& layer = layers_[l];
        for (size_t k = 0; k < layer.w.size(); ++k) {
          double g = gw[l][k] / batch_n + options_.l2 * layer.w[k];
          layer.mw[k] = kAdamBeta1 * layer.mw[k] + (1.0 - kAdamBeta1) * g;
          layer.vw[k] = kAdamBeta2 * layer.vw[k] + (1.0 - kAdamBeta2) * g * g;
          layer.w[k] -= options_.learning_rate * (layer.mw[k] / bias1) /
                        (std::sqrt(layer.vw[k] / bias2) + kAdamEps);
        }
        for (size_t k = 0; k < layer.b.size(); ++k) {
          double g = gb[l][k] / batch_n;
          layer.mb[k] = kAdamBeta1 * layer.mb[k] + (1.0 - kAdamBeta1) * g;
          layer.vb[k] = kAdamBeta2 * layer.vb[k] + (1.0 - kAdamBeta2) * g * g;
          layer.b[k] -= options_.learning_rate * (layer.mb[k] / bias1) /
                        (std::sqrt(layer.vb[k] / bias2) + kAdamEps);
        }
      }
      batch_start = batch_end;
    }
    final_loss_ = epoch_loss / static_cast<double>(n);
  }
  return Status::OK();
}

double MlpClassifier::PredictProba(const double* features, size_t n) const {
  assert(n == feature_mean_.size() && "feature dimension mismatch");
  (void)n;
  return Forward(features, nullptr);
}

}  // namespace learnrisk
