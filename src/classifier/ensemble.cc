// Copyright 2026 The LearnRisk Authors

#include "classifier/ensemble.h"

#include <mutex>

#include "common/parallel.h"

namespace learnrisk {

Status BootstrapEnsemble::Train(const FeatureMatrix& features,
                                const std::vector<uint8_t>& labels) {
  if (features.rows() != labels.size()) {
    return Status::InvalidArgument("feature rows != label count");
  }
  const size_t n = features.rows();
  if (n == 0) return Status::InvalidArgument("empty training set");

  members_.clear();
  members_.resize(k_);
  // Pre-draw bootstrap samples and member seeds so training order does not
  // affect determinism even under the parallel loop.
  Rng rng(seed_);
  std::vector<std::vector<size_t>> samples(k_);
  std::vector<uint64_t> member_seeds(k_);
  for (size_t m = 0; m < k_; ++m) {
    samples[m].resize(n);
    for (size_t i = 0; i < n; ++i) samples[m][i] = rng.Index(n);
    member_seeds[m] = rng.Fork();
  }

  Status first_error = Status::OK();
  std::mutex error_mutex;
  ParallelFor(k_, [&](size_t m) {
    FeatureMatrix boot(n, features.cols());
    std::vector<uint8_t> boot_labels(n);
    for (size_t i = 0; i < n; ++i) {
      const size_t src = samples[m][i];
      for (size_t j = 0; j < features.cols(); ++j) {
        boot.set(i, j, features.at(src, j));
      }
      boot_labels[i] = labels[src];
    }
    auto model = factory_(member_seeds[m]);
    Status st = model->Train(boot, boot_labels);
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (first_error.ok()) first_error = st;
      return;
    }
    members_[m] = std::move(model);
  });
  if (!first_error.ok()) {
    members_.clear();
    return first_error;
  }
  return Status::OK();
}

std::vector<double> BootstrapEnsemble::VoteFraction(
    const FeatureMatrix& features) const {
  std::vector<double> votes(features.rows(), 0.0);
  for (const auto& member : members_) {
    for (size_t i = 0; i < features.rows(); ++i) {
      if (member->PredictProba(features.row(i), features.cols()) >= 0.5) {
        votes[i] += 1.0;
      }
    }
  }
  const double k = static_cast<double>(members_.size());
  for (double& v : votes) v /= k;
  return votes;
}

std::vector<double> BootstrapEnsemble::MeanProba(
    const FeatureMatrix& features) const {
  std::vector<double> mean(features.rows(), 0.0);
  for (const auto& member : members_) {
    for (size_t i = 0; i < features.rows(); ++i) {
      mean[i] += member->PredictProba(features.row(i), features.cols());
    }
  }
  const double k = static_cast<double>(members_.size());
  for (double& v : mean) v /= k;
  return mean;
}

}  // namespace learnrisk
