// Copyright 2026 The LearnRisk Authors
// Bootstrap ensemble of classifiers: the substrate behind the paper's
// "Uncertainty" baseline (Sec. 7, after Mozafari et al.): train k models on
// bootstrap resamples, estimate a pair's equivalence probability as the
// fraction of models voting "match", and score risk as p(1-p).

#ifndef LEARNRISK_CLASSIFIER_ENSEMBLE_H_
#define LEARNRISK_CLASSIFIER_ENSEMBLE_H_

#include <memory>
#include <vector>

#include "classifier/classifier.h"
#include "common/random.h"

namespace learnrisk {

/// \brief Trains k classifiers on bootstrap resamples of the training data.
class BootstrapEnsemble {
 public:
  /// \param factory spawns a fresh untrained classifier per member.
  /// \param k ensemble size (the paper uses 20).
  BootstrapEnsemble(ClassifierFactory factory, size_t k, uint64_t seed)
      : factory_(std::move(factory)), k_(k), seed_(seed) {}

  /// \brief Trains every member on an independent bootstrap resample.
  Status Train(const FeatureMatrix& features,
               const std::vector<uint8_t>& labels);

  size_t size() const { return members_.size(); }
  const BinaryClassifier& member(size_t i) const { return *members_[i]; }

  /// \brief Fraction of members predicting "match" per row (the bootstrap
  /// equivalence-probability estimate of Mozafari et al.).
  std::vector<double> VoteFraction(const FeatureMatrix& features) const;

  /// \brief Mean of member probabilities per row.
  std::vector<double> MeanProba(const FeatureMatrix& features) const;

 private:
  ClassifierFactory factory_;
  size_t k_;
  uint64_t seed_;
  std::vector<std::unique_ptr<BinaryClassifier>> members_;
};

}  // namespace learnrisk

#endif  // LEARNRISK_CLASSIFIER_ENSEMBLE_H_
