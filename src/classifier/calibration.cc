// Copyright 2026 The LearnRisk Authors

#include "classifier/calibration.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace learnrisk {
namespace {

double SafeLogit(double p) {
  p = Clamp(p, 1e-7, 1.0 - 1e-7);
  return std::log(p / (1.0 - p));
}

}  // namespace

Status PlattCalibrator::Fit(const std::vector<double>& probs,
                            const std::vector<uint8_t>& labels, size_t epochs,
                            double learning_rate) {
  if (probs.size() != labels.size()) {
    return Status::InvalidArgument("probability count != label count");
  }
  if (probs.empty()) {
    return Status::InvalidArgument("empty calibration set");
  }
  std::vector<double> z(probs.size());
  for (size_t i = 0; i < probs.size(); ++i) z[i] = SafeLogit(probs[i]);

  a_ = 1.0;
  b_ = 0.0;
  const double inv_n = 1.0 / static_cast<double>(probs.size());
  for (size_t epoch = 0; epoch < epochs; ++epoch) {
    double ga = 0.0;
    double gb = 0.0;
    for (size_t i = 0; i < probs.size(); ++i) {
      const double p = Sigmoid(a_ * z[i] + b_);
      const double delta = p - (labels[i] ? 1.0 : 0.0);
      ga += delta * z[i];
      gb += delta;
    }
    a_ -= learning_rate * ga * inv_n;
    b_ -= learning_rate * gb * inv_n;
  }
  return Status::OK();
}

double PlattCalibrator::Calibrate(double prob) const {
  return Sigmoid(a_ * SafeLogit(prob) + b_);
}

std::vector<double> PlattCalibrator::CalibrateAll(
    const std::vector<double>& probs) const {
  std::vector<double> out(probs.size());
  for (size_t i = 0; i < probs.size(); ++i) out[i] = Calibrate(probs[i]);
  return out;
}

double PlattCalibrator::ExpectedCalibrationError(
    const std::vector<double>& probs, const std::vector<uint8_t>& labels,
    size_t bins) {
  if (probs.empty() || bins == 0) return 0.0;
  std::vector<double> conf_sum(bins, 0.0);
  std::vector<double> acc_sum(bins, 0.0);
  std::vector<size_t> count(bins, 0);
  for (size_t i = 0; i < probs.size(); ++i) {
    size_t b = std::min(static_cast<size_t>(Clamp(probs[i], 0.0, 1.0) *
                                            static_cast<double>(bins)),
                        bins - 1);
    conf_sum[b] += probs[i];
    acc_sum[b] += labels[i] ? 1.0 : 0.0;
    count[b]++;
  }
  double ece = 0.0;
  for (size_t b = 0; b < bins; ++b) {
    if (count[b] == 0) continue;
    const double n = static_cast<double>(count[b]);
    ece += n / static_cast<double>(probs.size()) *
           std::fabs(acc_sum[b] / n - conf_sum[b] / n);
  }
  return ece;
}

}  // namespace learnrisk
