// Copyright 2026 The LearnRisk Authors
// Confidence calibration (Platt scaling). The paper's related work (Sec. 2)
// observes that calibration transforms classifier outputs toward true
// correctness likelihoods but — being a monotone map — cannot change the
// *ranking* of instances, so it cannot substitute for risk analysis. This
// module implements Platt scaling so that claim is demonstrable in-repo
// (see bench_ext_calibration).

#ifndef LEARNRISK_CLASSIFIER_CALIBRATION_H_
#define LEARNRISK_CLASSIFIER_CALIBRATION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace learnrisk {

/// \brief Platt scaling: p' = sigmoid(a * logit(p) + b), with (a, b) fit by
/// maximum likelihood on held-out labeled outputs.
class PlattCalibrator {
 public:
  /// \brief Fits (a, b) on validation outputs and their ground-truth labels
  /// (1 = match) by gradient descent on the log loss.
  Status Fit(const std::vector<double>& probs,
             const std::vector<uint8_t>& labels, size_t epochs = 500,
             double learning_rate = 0.1);

  /// \brief Calibrated probability for one raw output.
  double Calibrate(double prob) const;

  /// \brief Calibrated probabilities for a batch.
  std::vector<double> CalibrateAll(const std::vector<double>& probs) const;

  double a() const { return a_; }
  double b() const { return b_; }

  /// \brief Expected calibration error over equal-width bins: the standard
  /// diagnostic (lower = better calibrated).
  static double ExpectedCalibrationError(const std::vector<double>& probs,
                                         const std::vector<uint8_t>& labels,
                                         size_t bins = 10);

 private:
  double a_ = 1.0;
  double b_ = 0.0;
};

}  // namespace learnrisk

#endif  // LEARNRISK_CLASSIFIER_CALIBRATION_H_
