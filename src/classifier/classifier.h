// Copyright 2026 The LearnRisk Authors
// Abstract ER classifier interface. LearnRisk treats the classifier as a
// black box that labels pairs with an equivalence probability; this interface
// is the seam where the paper plugs in DeepMatcher and we plug in the MLP
// substitute (DESIGN.md §4).

#ifndef LEARNRISK_CLASSIFIER_CLASSIFIER_H_
#define LEARNRISK_CLASSIFIER_CLASSIFIER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "metrics/metric_suite.h"

namespace learnrisk {

/// \brief Binary match/unmatch classifier over per-pair metric vectors.
class BinaryClassifier {
 public:
  virtual ~BinaryClassifier() = default;

  /// \brief Fits on a feature matrix with 0/1 labels (1 = equivalent).
  virtual Status Train(const FeatureMatrix& features,
                       const std::vector<uint8_t>& labels) = 0;

  /// \brief P(match) for one feature row of length `n`.
  virtual double PredictProba(const double* features, size_t n) const = 0;

  /// \brief P(match) for every row.
  std::vector<double> PredictProbaAll(const FeatureMatrix& features) const;

  /// \brief Hard labels at the 0.5 threshold.
  std::vector<uint8_t> PredictAll(const FeatureMatrix& features) const;
};

/// \brief Factory used by ensembles and active-learning loops to spawn fresh
/// classifiers.
using ClassifierFactory =
    std::function<std::unique_ptr<BinaryClassifier>(uint64_t seed)>;

}  // namespace learnrisk

#endif  // LEARNRISK_CLASSIFIER_CLASSIFIER_H_
