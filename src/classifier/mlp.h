// Copyright 2026 The LearnRisk Authors
// Feed-forward neural network classifier: the in-repo stand-in for
// DeepMatcher (paper Sec. 7.1). ReLU hidden layers, sigmoid output, weighted
// binary cross-entropy (class weighting for ER's match/unmatch imbalance),
// Adam optimizer, mini-batch training with per-feature standardization.

#ifndef LEARNRISK_CLASSIFIER_MLP_H_
#define LEARNRISK_CLASSIFIER_MLP_H_

#include <cstdint>
#include <vector>

#include "classifier/classifier.h"
#include "common/random.h"

namespace learnrisk {

/// \brief MLP hyperparameters.
struct MlpOptions {
  /// Hidden layer widths; empty = logistic regression shape.
  std::vector<size_t> hidden = {32, 16};
  size_t epochs = 40;
  size_t batch_size = 64;
  double learning_rate = 1e-3;
  double l2 = 1e-4;
  /// Loss weight for positive (match) examples; 0 selects n_neg / n_pos.
  double positive_weight = 0.0;
  uint64_t seed = 1;
};

/// \brief Multi-layer perceptron with manual backprop and Adam.
class MlpClassifier : public BinaryClassifier {
 public:
  explicit MlpClassifier(MlpOptions options = {});

  Status Train(const FeatureMatrix& features,
               const std::vector<uint8_t>& labels) override;

  double PredictProba(const double* features, size_t n) const override;

  /// \brief Mean training loss of the final epoch (for convergence tests).
  double final_loss() const { return final_loss_; }

  const MlpOptions& options() const { return options_; }

 private:
  struct Layer {
    size_t in = 0;
    size_t out = 0;
    std::vector<double> w;  // out x in, row-major
    std::vector<double> b;  // out
    // Adam state.
    std::vector<double> mw, vw, mb, vb;
  };

  void InitLayers(size_t input_dim, Rng* rng);
  // Forward pass; activations[l] = post-activation of layer l (activations[0]
  // = standardized input). Returns the output probability.
  double Forward(const double* x, std::vector<std::vector<double>>* acts) const;

  MlpOptions options_;
  std::vector<Layer> layers_;
  std::vector<double> feature_mean_;
  std::vector<double> feature_std_;
  double final_loss_ = 0.0;
  size_t adam_step_ = 0;
};

}  // namespace learnrisk

#endif  // LEARNRISK_CLASSIFIER_MLP_H_
