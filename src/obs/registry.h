// Copyright 2026 The LearnRisk Authors
// Metric registry — the naming layer of the telemetry subsystem. Owns every
// instrument (counters, gauges, histograms) keyed by metric name + label
// set, hands out stable raw pointers for hot-path recording, and produces
// immutable point-in-time MetricsSnapshots for the exporters.
//
// Concurrency: instrument creation (get-or-create) and Snapshot() take the
// registry mutex — both are cold paths, run at namespace registration and
// scrape time. Recording through the returned pointers never touches the
// registry at all: callers cache the pointers once and the instruments are
// lock-free (see obs/metrics.h), so the Resolve hot path stays contention
// free. Returned pointers live as long as the registry.

#ifndef LEARNRISK_OBS_REGISTRY_H_
#define LEARNRISK_OBS_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace learnrisk {

/// \brief Thread-safe name -> instrument registry.
///
/// Metric names follow the Prometheus convention ([a-zA-Z_:][a-zA-Z0-9_:]*,
/// counters end in `_total`, latency histograms in `_seconds`); one name
/// holds exactly one instrument type — a get-or-create under a name already
/// registered with a different type returns nullptr (callers treat that as
/// a programming error). The same name with different label sets yields
/// independent instruments of one family, sharing the help text of the
/// first registration.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// \brief Get-or-create a counter under (name, labels).
  ShardedCounter* Counter(const std::string& name, MetricLabels labels,
                          const std::string& help);

  /// \brief Get-or-create a gauge under (name, labels).
  ShardedGauge* Gauge(const std::string& name, MetricLabels labels,
                      const std::string& help);

  /// \brief Registers a gauge evaluated lazily at snapshot time (resident
  /// counts, queue depths — values that are cheaper to read than to track).
  /// The callback runs under the registry mutex during Snapshot(); it must
  /// not call back into this registry. Re-registering (name, labels)
  /// replaces the callback.
  void GaugeCallback(const std::string& name, MetricLabels labels,
                     const std::string& help,
                     std::function<int64_t()> callback);

  /// \brief Get-or-create a log-bucketed latency histogram (record
  /// nanoseconds; exported scaled to seconds).
  LatencyHistogram* Latency(const std::string& name, MetricLabels labels,
                            const std::string& help);

  /// \brief Get-or-create a linear [0, 1] value histogram (record ratios;
  /// exported scaled from micro-units back to ratios).
  ValueHistogram* Values(const std::string& name, MetricLabels labels,
                         const std::string& help);

  /// \brief Immutable point-in-time view of every instrument: stripes
  /// summed, histogram buckets copied, gauge callbacks evaluated. Entries
  /// are sorted by (name, labels). Safe under concurrent recording; a
  /// snapshot taken mid-record may miss in-flight samples but never tears
  /// an instrument, and counter values never decrease between snapshots.
  MetricsSnapshot Snapshot() const;

 private:
  enum class Type { kCounter, kGauge, kGaugeCallback, kLatency, kValues };

  struct Instrument {
    MetricLabels labels;
    std::unique_ptr<ShardedCounter> counter;
    std::unique_ptr<ShardedGauge> gauge;
    std::function<int64_t()> gauge_callback;
    std::unique_ptr<LatencyHistogram> latency;
    std::unique_ptr<ValueHistogram> values;
  };

  struct Family {
    Type type;
    std::string help;
    std::vector<std::unique_ptr<Instrument>> instruments;
  };

  /// \brief Finds or creates the (name, labels) instrument slot; null on a
  /// type conflict. Caller holds mu_.
  Instrument* SlotLocked(const std::string& name, MetricLabels labels,
                         const std::string& help, Type type);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

}  // namespace learnrisk

#endif  // LEARNRISK_OBS_REGISTRY_H_
