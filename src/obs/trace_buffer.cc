// Copyright 2026 The LearnRisk Authors

#include "obs/trace_buffer.h"

#include <algorithm>

namespace learnrisk {

TraceBuffer::TraceBuffer(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), slots_(capacity_) {}

void TraceBuffer::Push(std::shared_ptr<const RequestTrace> trace) {
  if (trace == nullptr) return;
  const uint64_t slot =
      head_.fetch_add(1, std::memory_order_relaxed) % capacity_;
  // The exchange is the publish point: release so a scraper that acquires
  // the pointer sees the fully built trace, and the returned previous
  // occupant gives exact drop-oldest accounting.
  std::shared_ptr<const RequestTrace> evicted =
      std::atomic_exchange_explicit(&slots_[slot], std::move(trace),
                                    std::memory_order_acq_rel);
  if (evicted != nullptr) dropped_.fetch_add(1, std::memory_order_relaxed);
  pushed_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::shared_ptr<const RequestTrace>> TraceBuffer::Snapshot()
    const {
  std::vector<std::shared_ptr<const RequestTrace>> traces;
  traces.reserve(capacity_);
  for (const auto& slot : slots_) {
    std::shared_ptr<const RequestTrace> trace =
        std::atomic_load_explicit(&slot, std::memory_order_acquire);
    if (trace != nullptr) traces.push_back(std::move(trace));
  }
  std::sort(traces.begin(), traces.end(),
            [](const std::shared_ptr<const RequestTrace>& a,
               const std::shared_ptr<const RequestTrace>& b) {
              return a->request_id < b->request_id;
            });
  return traces;
}

}  // namespace learnrisk
