// Copyright 2026 The LearnRisk Authors
// Online drift monitoring — the third pillar of decision observability.
// At publish time the trainer freezes per-column histograms of the
// training feature matrix (and optionally the training risk-score
// distribution) into a DriftBaseline that rides the ScorerSnapshot; at
// serve time the gateway streams every observed feature value into
// per-column ValueHistograms (one RecordBucketed flush per column per
// batch, see ObserveFeatures); at scrape time a PSI divergence between
// the frozen and live distributions surfaces as per-column gauges
// (learnrisk_gateway_drift_psi_micros) through MetricsSnapshot() and the
// Prometheus exporter. Math and thresholds: docs/TRACING.md.

#ifndef LEARNRISK_OBS_DRIFT_H_
#define LEARNRISK_OBS_DRIFT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/metric_suite.h"
#include "obs/metrics.h"

namespace learnrisk {

/// \brief Frozen distribution of one feature column: sample counts over
/// the same 64 linear [0, 1] buckets ValueHistogram uses, so the live and
/// baseline sides compare bucket-for-bucket with no re-binning.
struct DriftColumn {
  std::string name;
  std::vector<uint64_t> counts;  ///< ValueHistogram::kNumBuckets entries
  uint64_t total = 0;
};

/// \brief Training-time reference distributions, frozen into the
/// ScorerSnapshot when a model is published with one (Gateway::Publish /
/// ServingEngine::Publish). Immutable after construction; shared by
/// const shared_ptr between the scorer and the gateway's drift gauges.
/// Not persisted by model_io: a model reloaded from disk (registry LRU
/// spill, WAL recovery) serves without a baseline and its drift gauges
/// read 0 until the next Publish supplies one.
class DriftBaseline {
 public:
  static constexpr size_t kNumBuckets = ValueHistogram::kNumBuckets;

  /// \brief Buckets every value of the training feature matrix column-wise
  /// (non-finite values are dropped, everything else clamped to [0, 1] in
  /// micro-units — the exact quantization the live side applies). Column
  /// names come from `features.column_names` when present. `risk_scores`,
  /// when non-empty, freezes the training risk-score distribution for
  /// comparison against the live risk-score ValueHistogram.
  static DriftBaseline FromTraining(const FeatureMatrix& features,
                                    const std::vector<double>& risk_scores = {});

  const std::vector<DriftColumn>& columns() const { return columns_; }

  /// \brief Frozen risk-score distribution; total == 0 when none was given.
  const DriftColumn& risk() const { return risk_; }
  bool has_risk() const { return risk_.total > 0; }

 private:
  std::vector<DriftColumn> columns_;
  DriftColumn risk_;
};

/// \brief Population Stability Index between a frozen baseline column and a
/// live histogram snapshot over the same bucket layout:
///   PSI = sum_i (p_i - q_i) * ln(p_i / q_i)
/// with Laplace smoothing (+0.5 per bucket) so empty buckets on either side
/// stay finite. Symmetric and >= 0; 0 when either side has no samples. The
/// conventional reading: < 0.1 stable, 0.1–0.2 moderate shift, > 0.2 drift.
double Psi(const DriftColumn& baseline, const HistogramSnapshot& live);

/// \brief Psi() in integer micro-units (1e6 = PSI 1.0) — the gauge
/// representation exported by the gateway.
int64_t PsiMicros(const DriftColumn& baseline, const HistogramSnapshot& live);

/// \brief Streams every value of a featurized batch into the per-column
/// live histograms (columns[c] receives features column c; extra columns on
/// either side are ignored). Buckets each column into a local array first
/// and flushes with one ValueHistogram::RecordBucketed call, so the atomic
/// traffic is one add per non-empty bucket per column rather than four per
/// sample — cheap enough to run on every Resolve.
void ObserveFeatures(const FeatureMatrix& features,
                     const std::vector<ValueHistogram*>& columns);

}  // namespace learnrisk

#endif  // LEARNRISK_OBS_DRIFT_H_
