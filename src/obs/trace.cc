// Copyright 2026 The LearnRisk Authors

#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace learnrisk {
namespace {

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

// JSON string escaping (quotes, backslash, control characters).
std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void EmitTrace(std::ostringstream* out, const RequestTrace& trace) {
  *out << "{\"request_id\": " << trace.request_id << ", \"api\": \""
       << EscapeJson(trace.api) << "\", \"namespace\": \""
       << EscapeJson(trace.ns) << "\", \"model_version\": "
       << trace.model_version << ", \"start_ns\": " << trace.start_ns
       << ", \"total_ns\": " << trace.total_ns << ", \"candidates\": "
       << trace.candidates << ", \"pairs_scored\": " << trace.pairs_scored
       << ", \"max_risk\": " << FormatDouble(trace.max_risk)
       << ", \"head_sampled\": " << (trace.head_sampled ? "true" : "false")
       << ", \"slow\": " << (trace.slow ? "true" : "false")
       << ", \"high_risk\": " << (trace.high_risk ? "true" : "false")
       << ", \"stages\": [";
  for (size_t i = 0; i < trace.stages.size(); ++i) {
    *out << (i == 0 ? "" : ", ") << "{\"stage\": \""
         << EscapeJson(trace.stages[i].stage) << "\", \"ms\": "
         << FormatDouble(trace.stages[i].ms) << "}";
  }
  *out << "], \"top_risky\": [";
  for (size_t i = 0; i < trace.top_risky.size(); ++i) {
    const TracedDecision& decision = trace.top_risky[i];
    *out << (i == 0 ? "" : ", ") << "{\"left\": " << decision.left
         << ", \"right\": " << decision.right << ", \"risk\": "
         << FormatDouble(decision.risk) << ", \"classifier_prob\": "
         << FormatDouble(decision.classifier_prob) << ", \"machine_label\": "
         << (decision.machine_label ? "true" : "false")
         << ", \"active_rules\": [";
    for (size_t r = 0; r < decision.active_rules.size(); ++r) {
      *out << (r == 0 ? "" : ", ") << decision.active_rules[r];
    }
    *out << "], \"explanation\": [";
    for (size_t e = 0; e < decision.explanation.size(); ++e) {
      const TraceContribution& c = decision.explanation[e];
      *out << (e == 0 ? "" : ", ") << "{\"rule\": \""
           << EscapeJson(c.description) << "\", \"weight\": "
           << FormatDouble(c.weight) << ", \"expectation\": "
           << FormatDouble(c.expectation) << ", \"rsd\": "
           << FormatDouble(c.rsd) << "}";
    }
    *out << "]}";
  }
  *out << "]}";
}

}  // namespace

std::string ExportTracesJson(
    const std::vector<std::shared_ptr<const RequestTrace>>& traces) {
  std::vector<std::shared_ptr<const RequestTrace>> ordered;
  ordered.reserve(traces.size());
  for (const auto& trace : traces) {
    if (trace != nullptr) ordered.push_back(trace);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const std::shared_ptr<const RequestTrace>& a,
               const std::shared_ptr<const RequestTrace>& b) {
              if (a->start_ns != b->start_ns) return a->start_ns < b->start_ns;
              return a->request_id < b->request_id;
            });
  std::ostringstream out;
  out << "{\"traces\": [";
  for (size_t i = 0; i < ordered.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    EmitTrace(&out, *ordered[i]);
  }
  out << "\n]}\n";
  return out.str();
}

}  // namespace learnrisk
