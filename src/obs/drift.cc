// Copyright 2026 The LearnRisk Authors

#include "obs/drift.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace learnrisk {
namespace {

constexpr double kSmoothing = 0.5;  // Laplace mass added to every bucket

void BucketValues(const double* values, size_t count, size_t stride,
                  DriftColumn* out) {
  out->counts.assign(DriftBaseline::kNumBuckets, 0);
  out->total = 0;
  for (size_t i = 0; i < count; ++i) {
    const double value = values[i * stride];
    if (!std::isfinite(value)) continue;
    const uint64_t micro = ValueHistogram::ToMicro(value);
    ++out->counts[ValueHistogram::BucketIndex(micro)];
    ++out->total;
  }
}

}  // namespace

DriftBaseline DriftBaseline::FromTraining(
    const FeatureMatrix& features, const std::vector<double>& risk_scores) {
  DriftBaseline baseline;
  baseline.columns_.resize(features.cols());
  for (size_t c = 0; c < features.cols(); ++c) {
    DriftColumn& column = baseline.columns_[c];
    column.name = c < features.column_names.size()
                      ? features.column_names[c]
                      : "column_" + std::to_string(c);
    if (features.rows() > 0) {
      BucketValues(features.row(0) + c, features.rows(), features.cols(),
                   &column);
    } else {
      column.counts.assign(kNumBuckets, 0);
    }
  }
  baseline.risk_.name = "risk_score";
  if (!risk_scores.empty()) {
    BucketValues(risk_scores.data(), risk_scores.size(), 1, &baseline.risk_);
  } else {
    baseline.risk_.counts.assign(kNumBuckets, 0);
  }
  return baseline;
}

double Psi(const DriftColumn& baseline, const HistogramSnapshot& live) {
  if (baseline.total == 0 || live.count == 0) return 0.0;
  if (baseline.counts.size() != DriftBaseline::kNumBuckets) return 0.0;
  // Re-densify the sparse live snapshot onto the shared fixed layout.
  uint64_t live_counts[DriftBaseline::kNumBuckets] = {0};
  for (const HistogramBucket& bucket : live.buckets) {
    live_counts[ValueHistogram::BucketIndex(bucket.upper_bound)] +=
        bucket.count;
  }
  const double base_denom =
      static_cast<double>(baseline.total) +
      kSmoothing * static_cast<double>(DriftBaseline::kNumBuckets);
  const double live_denom =
      static_cast<double>(live.count) +
      kSmoothing * static_cast<double>(DriftBaseline::kNumBuckets);
  double psi = 0.0;
  for (size_t i = 0; i < DriftBaseline::kNumBuckets; ++i) {
    const double q =
        (static_cast<double>(baseline.counts[i]) + kSmoothing) / base_denom;
    const double p =
        (static_cast<double>(live_counts[i]) + kSmoothing) / live_denom;
    psi += (p - q) * std::log(p / q);
  }
  return psi;
}

int64_t PsiMicros(const DriftColumn& baseline, const HistogramSnapshot& live) {
  return static_cast<int64_t>(std::llround(Psi(baseline, live) * 1e6));
}

void ObserveFeatures(const FeatureMatrix& features,
                     const std::vector<ValueHistogram*>& columns) {
  if (features.rows() == 0) return;
  const size_t num_columns = std::min(columns.size(), features.cols());
  uint64_t counts[ValueHistogram::kNumBuckets];
  for (size_t c = 0; c < num_columns; ++c) {
    if (columns[c] == nullptr) continue;
    std::fill(counts, counts + ValueHistogram::kNumBuckets, uint64_t{0});
    uint64_t total = 0;
    uint64_t sum = 0;
    uint64_t min = UINT64_MAX;
    uint64_t max = 0;
    for (size_t r = 0; r < features.rows(); ++r) {
      const double value = features.at(r, c);
      if (!std::isfinite(value)) continue;
      const uint64_t micro = ValueHistogram::ToMicro(value);
      ++counts[ValueHistogram::BucketIndex(micro)];
      ++total;
      sum += micro;
      min = std::min(min, micro);
      max = std::max(max, micro);
    }
    columns[c]->RecordBucketed(counts, total, sum, min, max);
  }
}

}  // namespace learnrisk
