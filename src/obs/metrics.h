// Copyright 2026 The LearnRisk Authors
// Lock-free metric primitives — the bottom layer of the runtime telemetry
// subsystem (src/obs). Everything here is built for the gateway's Resolve
// hot path: recording a sample is a handful of relaxed atomic operations on
// per-thread stripes or histogram buckets, with no locks, no allocation, and
// no contention between recorder threads that stay on their own stripe.
// Aggregation (stripe summing, bucket copying) happens only at snapshot
// time, off the serving path. The full metric catalog, naming convention,
// and exporter formats are documented in docs/OBSERVABILITY.md.
//
//  - ShardedCounter / ShardedGauge: per-thread cache-line-padded atomic
//    stripes; Add() touches one stripe, Value() sums them.
//  - LatencyHistogram: HDR-style log-bucketed histogram over uint64 values
//    (the gateway records nanoseconds). Fixed bucket layout — values below
//    32 are exact, above that every power-of-two range splits into 32
//    linear sub-buckets (relative error <= 1/32) — so histograms merge
//    bucket-for-bucket and quantiles extract without interpolation guesses.
//  - ValueHistogram: 64 linear buckets over [0, 1] (risk scores), recorded
//    in fixed-point micro-units so the snapshot side is integer-exact.
//  - TraceSpan: RAII span that records its elapsed wall-clock nanoseconds
//    into a LatencyHistogram (and optionally a double-milliseconds slot,
//    so StageTiming and the histograms are fed by the same measurement).

#ifndef LEARNRISK_OBS_METRICS_H_
#define LEARNRISK_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace learnrisk {

/// \brief Number of independent atomic stripes per sharded metric. Each
/// recording thread is assigned one stripe round-robin at first use, so up
/// to this many threads record with zero cache-line contention.
inline constexpr size_t kMetricStripes = 16;

/// \brief This thread's stripe slot in [0, kMetricStripes): assigned
/// round-robin on first call, stable for the thread's lifetime.
size_t ThisThreadStripe();

/// \brief Monotonically increasing lock-free counter. Add() is a relaxed
/// fetch_add on the calling thread's stripe; Value() sums the stripes (a
/// point-in-time floor under concurrent writers, exact once writers are
/// quiescent or joined).
class ShardedCounter {
 public:
  ShardedCounter() = default;
  ShardedCounter(const ShardedCounter&) = delete;
  ShardedCounter& operator=(const ShardedCounter&) = delete;

  void Add(uint64_t delta = 1) {
    stripes_[ThisThreadStripe()].value.fetch_add(delta,
                                                 std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Stripe& stripe : stripes_) {
      sum += stripe.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> value{0};
  };
  std::array<Stripe, kMetricStripes> stripes_;
};

/// \brief Lock-free up/down gauge: sharded signed deltas, summed at read
/// time. Set() is a convenience for single-writer gauges (it rewrites every
/// stripe and must not race concurrent Add calls); prefer delta updates or
/// a snapshot-time gauge callback (MetricRegistry::GaugeCallback) for
/// absolute values.
class ShardedGauge {
 public:
  ShardedGauge() = default;
  ShardedGauge(const ShardedGauge&) = delete;
  ShardedGauge& operator=(const ShardedGauge&) = delete;

  void Add(int64_t delta) {
    stripes_[ThisThreadStripe()].value.fetch_add(delta,
                                                 std::memory_order_relaxed);
  }

  void Set(int64_t value) {
    stripes_[0].value.store(value, std::memory_order_relaxed);
    for (size_t i = 1; i < stripes_.size(); ++i) {
      stripes_[i].value.store(0, std::memory_order_relaxed);
    }
  }

  int64_t Value() const {
    int64_t sum = 0;
    for (const Stripe& stripe : stripes_) {
      sum += stripe.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<int64_t> value{0};
  };
  std::array<Stripe, kMetricStripes> stripes_;
};

/// \brief Sorted key/value label set attached to one instrument (e.g.
/// {{"namespace", "ds"}, {"stage", "block"}}).
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// \brief One histogram bucket in a snapshot: per-bucket (non-cumulative)
/// count of samples with value <= upper_bound (and > the previous bucket's
/// upper bound). Raw recorded units; exporters apply the family scale.
struct HistogramBucket {
  uint64_t upper_bound = 0;  ///< inclusive, raw units
  uint64_t count = 0;
};

/// \brief Immutable point-in-time view of one histogram instrument.
struct HistogramSnapshot {
  std::string name;
  std::string help;
  MetricLabels labels;
  /// Multiplier from raw recorded units to the exported unit (1e-9 for
  /// nanosecond latency histograms exported as seconds; 1e-6 for
  /// micro-unit value histograms exported as ratios).
  double scale = 1.0;
  uint64_t count = 0;
  uint64_t sum = 0;  ///< raw units
  uint64_t min = 0;  ///< exact observed minimum (0 when count == 0)
  uint64_t max = 0;  ///< exact observed maximum
  /// Non-empty buckets in ascending upper_bound order.
  std::vector<HistogramBucket> buckets;

  /// \brief Quantile in raw units: the upper bound of the bucket holding
  /// rank ceil(q * count), clamped to the exact observed max — exact for
  /// values that map to single-value buckets, within one bucket's
  /// resolution (<= 1/32 relative) otherwise. q in [0, 1]; 0 when empty.
  double Quantile(double q) const;

  /// \brief Folds `other` into this snapshot bucket-for-bucket (same fixed
  /// layout, so merging is exact): counts, sum, min/max. Both snapshots
  /// must come from the same histogram family (same scale).
  void Merge(const HistogramSnapshot& other);
};

/// \brief Lock-free log-bucketed latency histogram over uint64 samples
/// (record nanoseconds). Fixed HDR-style layout: values < 32 get one bucket
/// each (exact); above that each power-of-two range [2^e, 2^(e+1)) splits
/// into 32 linear sub-buckets, bounding relative error by 1/32 (~3.1%).
/// The layout is identical across instances, so snapshots merge exactly.
/// Record() is 4 relaxed atomic ops (bucket, count, sum, max-CAS); no locks.
class LatencyHistogram {
 public:
  static constexpr size_t kSubBucketBits = 5;
  static constexpr size_t kSubBucketCount = size_t{1} << kSubBucketBits;  // 32
  /// 32 exact buckets + 59 octaves (exponents 5..63) x 32 sub-buckets,
  /// covering the full uint64 range with no overflow bucket.
  static constexpr size_t kNumBuckets =
      kSubBucketCount + (63 - kSubBucketBits + 1) * kSubBucketCount;

  LatencyHistogram();
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void Record(uint64_t value);

  /// \brief Bucket index of a value under the fixed layout.
  static size_t BucketIndex(uint64_t value);
  /// \brief Smallest value mapping to bucket `index`.
  static uint64_t BucketLowerBound(size_t index);
  /// \brief Largest value mapping to bucket `index` (inclusive).
  static uint64_t BucketUpperBound(size_t index);

  /// \brief Point-in-time copy of the buckets and summary stats (name,
  /// labels, help, and scale are filled by the registry). Safe under
  /// concurrent Record calls; totals are exact once recorders are joined.
  HistogramSnapshot Snapshot() const;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// \brief Lock-free linear histogram over [0, 1] (risk scores, classifier
/// probabilities). Samples are clamped to [0, 1] and recorded in fixed-point
/// micro-units (1e6 = 1.0) across 64 equal-width buckets, so snapshots are
/// integer-exact and merge bucket-for-bucket; non-finite samples are
/// dropped. Same 4-atomic-op Record cost as LatencyHistogram.
class ValueHistogram {
 public:
  static constexpr size_t kNumBuckets = 64;
  static constexpr uint64_t kScale = 1000000;  ///< micro-units per 1.0

  ValueHistogram();
  ValueHistogram(const ValueHistogram&) = delete;
  ValueHistogram& operator=(const ValueHistogram&) = delete;

  void Record(double value);

  /// \brief Merges a batch of pre-bucketed samples in one pass: counts[i]
  /// samples landed in bucket i (counts has kNumBuckets entries), with their
  /// total count, micro-unit sum, and observed micro min/max. Equivalent to
  /// the corresponding sequence of Record() calls but costs one atomic add
  /// per non-empty bucket instead of four per sample — the drift monitor
  /// uses this to observe every feature value of a batch for the price of a
  /// local array walk (see obs/drift.h). No-op when total is 0.
  void RecordBucketed(const uint64_t* counts, uint64_t total,
                      uint64_t micro_sum, uint64_t micro_min,
                      uint64_t micro_max);

  /// \brief Fixed-point micro-units of a finite sample, clamped to [0, 1] —
  /// the exact quantization Record() applies before bucketing.
  static uint64_t ToMicro(double value);

  static size_t BucketIndex(uint64_t micro_value);
  static uint64_t BucketUpperBound(size_t index);  ///< inclusive, micro-units

  HistogramSnapshot Snapshot() const;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// \brief One named stage measurement inside a request-scoped trace (see
/// obs/trace.h). `stage` is expected to be a string literal ("block",
/// "featurize", ...) so spans stay allocation-free.
struct TraceStageSpan {
  const char* stage = "";
  double ms = 0.0;
};

/// \brief RAII trace span: starts a wall clock on construction and records
/// the elapsed nanoseconds into `histogram` (when non-null) on destruction
/// or Stop(), optionally also writing elapsed milliseconds to `out_ms` —
/// one measurement feeding both the per-request StageTiming and the
/// namespace histograms, so the two always agree on stage boundaries. A
/// third out-channel (`trace_stages` + `stage`) appends the same
/// measurement to a request-scoped trace's stage list, so captured
/// RequestTraces, StageTiming, and the aggregate histograms can never
/// disagree on what a stage cost.
class TraceSpan {
 public:
  explicit TraceSpan(LatencyHistogram* histogram, double* out_ms = nullptr,
                     std::vector<TraceStageSpan>* trace_stages = nullptr,
                     const char* stage = "")
      : histogram_(histogram),
        out_ms_(out_ms),
        trace_stages_(trace_stages),
        stage_(stage),
        start_(std::chrono::steady_clock::now()) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() { Stop(); }

  /// \brief Ends the span now (idempotent) and returns the elapsed
  /// nanoseconds that were recorded.
  uint64_t Stop();

 private:
  LatencyHistogram* histogram_;
  double* out_ms_;
  std::vector<TraceStageSpan>* trace_stages_;
  const char* stage_;
  std::chrono::steady_clock::time_point start_;
  bool stopped_ = false;
  uint64_t elapsed_ns_ = 0;
};

/// \brief Immutable point-in-time view of one counter instrument.
struct CounterSnapshot {
  std::string name;
  std::string help;
  MetricLabels labels;
  uint64_t value = 0;
};

/// \brief Immutable point-in-time view of one gauge instrument.
struct GaugeSnapshot {
  std::string name;
  std::string help;
  MetricLabels labels;
  int64_t value = 0;
};

/// \brief Immutable point-in-time view of every instrument in a
/// MetricRegistry: what Gateway::MetricsSnapshot() returns and what the
/// exporters (ExportJson / ExportPrometheusText) consume. Entries are
/// sorted by (name, labels) for deterministic output.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// \brief Lookup helpers (exact name + label match); null when absent.
  const CounterSnapshot* FindCounter(const std::string& name,
                                     const MetricLabels& labels = {}) const;
  const GaugeSnapshot* FindGauge(const std::string& name,
                                 const MetricLabels& labels = {}) const;
  const HistogramSnapshot* FindHistogram(const std::string& name,
                                         const MetricLabels& labels = {}) const;
};

}  // namespace learnrisk

#endif  // LEARNRISK_OBS_METRICS_H_
