// Copyright 2026 The LearnRisk Authors
// Snapshot exporters — the presentation layer of the telemetry subsystem.
// Both consume an immutable MetricsSnapshot (Gateway::MetricsSnapshot() /
// MetricRegistry::Snapshot()) and are pure functions of it, so they are safe
// anywhere and never touch live instruments. Formats are documented with
// examples in docs/OBSERVABILITY.md; the Prometheus output is validated in
// CI by tools/check_metrics_format.sh.

#ifndef LEARNRISK_OBS_EXPORT_H_
#define LEARNRISK_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace learnrisk {

/// \brief JSON document: {"counters": [...], "gauges": [...],
/// "histograms": [...]}. Histogram entries carry count/sum/min/max and
/// derived p50/p90/p99 in exported units (seconds for latency families)
/// plus the non-empty buckets.
std::string ExportJson(const MetricsSnapshot& snapshot);

/// \brief Prometheus text exposition format (version 0.0.4): one HELP/TYPE
/// header per family, counters as `_total` samples, histograms as
/// cumulative `_bucket{le="..."}` series with `_sum` and `_count`, all
/// values in exported units and label values escaped per the spec.
std::string ExportPrometheusText(const MetricsSnapshot& snapshot);

}  // namespace learnrisk

#endif  // LEARNRISK_OBS_EXPORT_H_
