// Copyright 2026 The LearnRisk Authors

#include "obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace learnrisk {
namespace {

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

// Prometheus label-value escaping: backslash, double quote, newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

// JSON string escaping (quotes, backslash, control characters).
std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// `{k1="v1",k2="v2"}`, or empty when there are no labels. `extra` appends
// one more pair (used for the histogram `le` label).
std::string PrometheusLabels(const MetricLabels& labels,
                             const std::string& extra_key = "",
                             const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += key + "=\"" + EscapeLabelValue(value) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out.push_back(',');
    out += extra_key + "=\"" + EscapeLabelValue(extra_value) + "\"";
  }
  out.push_back('}');
  return out;
}

std::string JsonLabels(const MetricLabels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += "\"" + EscapeJson(key) + "\":\"" + EscapeJson(value) + "\"";
  }
  out.push_back('}');
  return out;
}

void EmitFamilyHeader(std::ostringstream* out, std::string* last_name,
                      const std::string& name, const std::string& help,
                      const char* type) {
  if (name == *last_name) return;
  *last_name = name;
  *out << "# HELP " << name << " " << help << "\n";
  *out << "# TYPE " << name << " " << type << "\n";
}

}  // namespace

std::string ExportPrometheusText(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  std::string last_name;
  for (const CounterSnapshot& counter : snapshot.counters) {
    EmitFamilyHeader(&out, &last_name, counter.name, counter.help, "counter");
    out << counter.name << PrometheusLabels(counter.labels) << " "
        << counter.value << "\n";
  }
  for (const GaugeSnapshot& gauge : snapshot.gauges) {
    EmitFamilyHeader(&out, &last_name, gauge.name, gauge.help, "gauge");
    out << gauge.name << PrometheusLabels(gauge.labels) << " " << gauge.value
        << "\n";
  }
  for (const HistogramSnapshot& histogram : snapshot.histograms) {
    EmitFamilyHeader(&out, &last_name, histogram.name, histogram.help,
                     "histogram");
    uint64_t cumulative = 0;
    for (const HistogramBucket& bucket : histogram.buckets) {
      cumulative += bucket.count;
      out << histogram.name << "_bucket"
          << PrometheusLabels(
                 histogram.labels, "le",
                 FormatDouble(static_cast<double>(bucket.upper_bound) *
                              histogram.scale))
          << " " << cumulative << "\n";
    }
    out << histogram.name << "_bucket"
        << PrometheusLabels(histogram.labels, "le", "+Inf") << " "
        << histogram.count << "\n";
    out << histogram.name << "_sum" << PrometheusLabels(histogram.labels)
        << " "
        << FormatDouble(static_cast<double>(histogram.sum) * histogram.scale)
        << "\n";
    out << histogram.name << "_count" << PrometheusLabels(histogram.labels)
        << " " << histogram.count << "\n";
  }
  return out.str();
}

std::string ExportJson(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\n  \"counters\": [";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    const CounterSnapshot& counter = snapshot.counters[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"name\": \""
        << EscapeJson(counter.name) << "\", \"labels\": "
        << JsonLabels(counter.labels) << ", \"value\": " << counter.value
        << "}";
  }
  out << "\n  ],\n  \"gauges\": [";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const GaugeSnapshot& gauge = snapshot.gauges[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"name\": \""
        << EscapeJson(gauge.name) << "\", \"labels\": "
        << JsonLabels(gauge.labels) << ", \"value\": " << gauge.value << "}";
  }
  out << "\n  ],\n  \"histograms\": [";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSnapshot& histogram = snapshot.histograms[i];
    const double scale = histogram.scale;
    out << (i == 0 ? "\n" : ",\n") << "    {\"name\": \""
        << EscapeJson(histogram.name) << "\", \"labels\": "
        << JsonLabels(histogram.labels) << ", \"count\": " << histogram.count
        << ", \"sum\": "
        << FormatDouble(static_cast<double>(histogram.sum) * scale)
        << ", \"min\": "
        << FormatDouble(static_cast<double>(histogram.min) * scale)
        << ", \"max\": "
        << FormatDouble(static_cast<double>(histogram.max) * scale)
        << ", \"p50\": " << FormatDouble(histogram.Quantile(0.5) * scale)
        << ", \"p90\": " << FormatDouble(histogram.Quantile(0.9) * scale)
        << ", \"p99\": " << FormatDouble(histogram.Quantile(0.99) * scale)
        << ", \"buckets\": [";
    for (size_t b = 0; b < histogram.buckets.size(); ++b) {
      out << (b == 0 ? "" : ", ") << "{\"le\": "
          << FormatDouble(
                 static_cast<double>(histogram.buckets[b].upper_bound) * scale)
          << ", \"count\": " << histogram.buckets[b].count << "}";
    }
    out << "]}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

}  // namespace learnrisk
