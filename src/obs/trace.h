// Copyright 2026 The LearnRisk Authors
// Request-scoped decision traces — the per-request pillar of the
// observability subsystem. Where src/obs/metrics.h aggregates (how fast is
// the gateway overall), a RequestTrace answers the question the paper cares
// about for ONE request: which stages it crossed and what they cost, how
// many candidates blocking produced, which model version scored it, and —
// for its riskiest pairs — which rules fired and what the ScorerSnapshot
// explanation says. Traces are captured by the gateway into a TraceBuffer
// (obs/trace_buffer.h) under head sampling plus slow/high-risk tail
// capture, retrieved via Gateway::RecentTraces(), and serialized for tools
// by ExportTracesJson. Schema and capture semantics: docs/TRACING.md.

#ifndef LEARNRISK_OBS_TRACE_H_
#define LEARNRISK_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace learnrisk {

/// \brief One weighted rule contribution inside a traced decision's
/// explanation — a plain copy of the serving layer's RiskContribution so
/// traces stay self-contained (no dependency on src/risk from src/obs).
struct TraceContribution {
  std::string description;  ///< human-readable rule text
  double weight = 0.0;      ///< learned rule weight
  double expectation = 0.0; ///< rule's risk expectation
  double rsd = 0.0;         ///< rule's risk standard deviation
};

/// \brief One scored pair selected into a trace (top-k by risk score),
/// with the evidence behind its score: the classifier probability, the
/// machine label, the indices of the risk rules that activated on its
/// feature row, and the frozen-model explanation of the heaviest rules.
struct TracedDecision {
  /// Record indices in the namespace's left/right tables. For probe
  /// (ResolveRecord) traces `left` is -1: the probe record has no index.
  int64_t left = -1;
  int64_t right = -1;
  double risk = 0.0;
  double classifier_prob = 0.0;
  bool machine_label = false;
  std::vector<uint32_t> active_rules;  ///< rule indices that fired
  std::vector<TraceContribution> explanation;
};

/// \brief A completed request's trace: id, API, namespace, model version,
/// stage spans (same measurements that feed StageTiming and the latency
/// histograms), candidate/pair counts, and the top-k riskiest decisions.
/// Immutable once published to the TraceBuffer — scrapers share it by
/// shared_ptr<const RequestTrace> and never see a partially built trace.
struct RequestTrace {
  uint64_t request_id = 0;    ///< gateway-wide, monotonically assigned
  const char* api = "";       ///< "resolve" | "resolve_record" | "add_record"
  std::string ns;             ///< namespace the request hit
  uint64_t model_version = 0; ///< scorer version that served it (0 = none)
  uint64_t start_ns = 0;      ///< steady-clock ns at request start
  uint64_t total_ns = 0;      ///< end-to-end wall time
  size_t candidates = 0;      ///< pairs produced by the blocking stage
  size_t pairs_scored = 0;    ///< pairs actually scored
  double max_risk = 0.0;      ///< highest risk score in the response
  bool head_sampled = false;  ///< captured by 1-in-N head sampling
  bool slow = false;          ///< captured because total exceeded slow_request_ms
  bool high_risk = false;     ///< captured because max_risk crossed threshold
  std::vector<TraceStageSpan> stages;   ///< in execution order
  std::vector<TracedDecision> top_risky;
};

/// \brief Serializes traces as a JSON document `{"traces": [...]}` with one
/// trace object per line, ordered by (start_ns, request_id) so timestamps
/// are monotone regardless of capture interleaving. The one-object-per-line
/// layout is load-bearing: tools/check_metrics_format.sh validates schema
/// keys, request-id uniqueness, and timestamp monotonicity line-by-line.
std::string ExportTracesJson(
    const std::vector<std::shared_ptr<const RequestTrace>>& traces);

}  // namespace learnrisk

#endif  // LEARNRISK_OBS_TRACE_H_
