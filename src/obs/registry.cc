// Copyright 2026 The LearnRisk Authors

#include "obs/registry.h"

#include <algorithm>
#include <utility>

namespace learnrisk {

MetricRegistry::Instrument* MetricRegistry::SlotLocked(const std::string& name,
                                                       MetricLabels labels,
                                                       const std::string& help,
                                                       Type type) {
  std::sort(labels.begin(), labels.end());
  auto [it, inserted] = families_.try_emplace(name);
  Family& family = it->second;
  if (inserted) {
    family.type = type;
    family.help = help;
  } else if (family.type != type) {
    // One name, one instrument type — a mismatch is a programming error in
    // the instrumentation layer, surfaced as a null instrument.
    return nullptr;
  }
  for (const auto& instrument : family.instruments) {
    if (instrument->labels == labels) return instrument.get();
  }
  family.instruments.push_back(std::make_unique<Instrument>());
  Instrument* instrument = family.instruments.back().get();
  instrument->labels = std::move(labels);
  switch (type) {
    case Type::kCounter:
      instrument->counter = std::make_unique<ShardedCounter>();
      break;
    case Type::kGauge:
      instrument->gauge = std::make_unique<ShardedGauge>();
      break;
    case Type::kGaugeCallback:
      break;  // callback assigned by the caller
    case Type::kLatency:
      instrument->latency = std::make_unique<LatencyHistogram>();
      break;
    case Type::kValues:
      instrument->values = std::make_unique<ValueHistogram>();
      break;
  }
  return instrument;
}

ShardedCounter* MetricRegistry::Counter(const std::string& name,
                                        MetricLabels labels,
                                        const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Instrument* slot = SlotLocked(name, std::move(labels), help, Type::kCounter);
  return slot == nullptr ? nullptr : slot->counter.get();
}

ShardedGauge* MetricRegistry::Gauge(const std::string& name,
                                    MetricLabels labels,
                                    const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Instrument* slot = SlotLocked(name, std::move(labels), help, Type::kGauge);
  return slot == nullptr ? nullptr : slot->gauge.get();
}

void MetricRegistry::GaugeCallback(const std::string& name,
                                   MetricLabels labels,
                                   const std::string& help,
                                   std::function<int64_t()> callback) {
  std::lock_guard<std::mutex> lock(mu_);
  Instrument* slot =
      SlotLocked(name, std::move(labels), help, Type::kGaugeCallback);
  if (slot != nullptr) slot->gauge_callback = std::move(callback);
}

LatencyHistogram* MetricRegistry::Latency(const std::string& name,
                                          MetricLabels labels,
                                          const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Instrument* slot = SlotLocked(name, std::move(labels), help, Type::kLatency);
  return slot == nullptr ? nullptr : slot->latency.get();
}

ValueHistogram* MetricRegistry::Values(const std::string& name,
                                       MetricLabels labels,
                                       const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Instrument* slot = SlotLocked(name, std::move(labels), help, Type::kValues);
  return slot == nullptr ? nullptr : slot->values.get();
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, family] : families_) {
    // Instruments of one family sorted by label set for deterministic
    // exporter output (families_ is already name-ordered).
    std::vector<const Instrument*> ordered;
    ordered.reserve(family.instruments.size());
    for (const auto& instrument : family.instruments) {
      ordered.push_back(instrument.get());
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const Instrument* a, const Instrument* b) {
                return a->labels < b->labels;
              });
    for (const Instrument* instrument : ordered) {
      switch (family.type) {
        case Type::kCounter: {
          CounterSnapshot entry;
          entry.name = name;
          entry.help = family.help;
          entry.labels = instrument->labels;
          entry.value = instrument->counter->Value();
          snapshot.counters.push_back(std::move(entry));
          break;
        }
        case Type::kGauge:
        case Type::kGaugeCallback: {
          GaugeSnapshot entry;
          entry.name = name;
          entry.help = family.help;
          entry.labels = instrument->labels;
          entry.value = family.type == Type::kGauge
                            ? instrument->gauge->Value()
                            : (instrument->gauge_callback
                                   ? instrument->gauge_callback()
                                   : 0);
          snapshot.gauges.push_back(std::move(entry));
          break;
        }
        case Type::kLatency: {
          HistogramSnapshot entry = instrument->latency->Snapshot();
          entry.name = name;
          entry.help = family.help;
          entry.labels = instrument->labels;
          entry.scale = 1e-9;  // nanoseconds -> seconds
          snapshot.histograms.push_back(std::move(entry));
          break;
        }
        case Type::kValues: {
          HistogramSnapshot entry = instrument->values->Snapshot();
          entry.name = name;
          entry.help = family.help;
          entry.labels = instrument->labels;
          entry.scale = 1.0 / static_cast<double>(ValueHistogram::kScale);
          snapshot.histograms.push_back(std::move(entry));
          break;
        }
      }
    }
  }
  return snapshot;
}

}  // namespace learnrisk
