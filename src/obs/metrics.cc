// Copyright 2026 The LearnRisk Authors

#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace learnrisk {
namespace {

// floor(log2(v)) for v > 0.
inline int HighestBit(uint64_t v) {
#if defined(__GNUC__) || defined(__clang__)
  return 63 - __builtin_clzll(v);
#else
  int bit = 0;
  while (v >>= 1) ++bit;
  return bit;
#endif
}

inline void AtomicMax(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t current = target->load(std::memory_order_relaxed);
  while (current < value &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

inline void AtomicMin(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t current = target->load(std::memory_order_relaxed);
  while (current > value &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

size_t ThisThreadStripe() {
  static std::atomic<size_t> next{0};
  thread_local const size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricStripes;
  return slot;
}

// --- HistogramSnapshot ------------------------------------------------------

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  if (rank < 1) rank = 1;
  uint64_t cumulative = 0;
  for (const HistogramBucket& bucket : buckets) {
    cumulative += bucket.count;
    if (cumulative >= rank) {
      return static_cast<double>(std::min(bucket.upper_bound, max));
    }
  }
  return static_cast<double>(max);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  if (other.count > 0) {
    max = std::max(max, other.max);
    min = count == other.count ? other.min : std::min(min, other.min);
  }
  // Both bucket lists are ascending views of the same fixed layout, so a
  // linear merge by upper bound is exact.
  std::vector<HistogramBucket> merged;
  merged.reserve(buckets.size() + other.buckets.size());
  size_t i = 0;
  size_t j = 0;
  while (i < buckets.size() || j < other.buckets.size()) {
    if (j == other.buckets.size() ||
        (i < buckets.size() &&
         buckets[i].upper_bound < other.buckets[j].upper_bound)) {
      merged.push_back(buckets[i++]);
    } else if (i == buckets.size() ||
               buckets[i].upper_bound > other.buckets[j].upper_bound) {
      merged.push_back(other.buckets[j++]);
    } else {
      merged.push_back(HistogramBucket{buckets[i].upper_bound,
                                       buckets[i].count +
                                           other.buckets[j].count});
      ++i;
      ++j;
    }
  }
  buckets = std::move(merged);
}

// --- LatencyHistogram -------------------------------------------------------

LatencyHistogram::LatencyHistogram() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
}

size_t LatencyHistogram::BucketIndex(uint64_t value) {
  if (value < kSubBucketCount) return value;
  const int exponent = HighestBit(value);  // >= kSubBucketBits
  const size_t shift = static_cast<size_t>(exponent) - kSubBucketBits;
  const size_t sub = static_cast<size_t>(value >> shift) - kSubBucketCount;
  return kSubBucketCount + shift * kSubBucketCount + sub;
}

uint64_t LatencyHistogram::BucketLowerBound(size_t index) {
  if (index < kSubBucketCount) return index;
  const size_t shift = (index - kSubBucketCount) / kSubBucketCount;
  const size_t sub = (index - kSubBucketCount) % kSubBucketCount;
  return static_cast<uint64_t>(kSubBucketCount + sub) << shift;
}

uint64_t LatencyHistogram::BucketUpperBound(size_t index) {
  if (index < kSubBucketCount) return index;
  const size_t shift = (index - kSubBucketCount) / kSubBucketCount;
  return BucketLowerBound(index) + ((uint64_t{1} << shift) - 1);
}

void LatencyHistogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snapshot;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t count = buckets_[i].load(std::memory_order_relaxed);
    if (count > 0) {
      snapshot.buckets.push_back(HistogramBucket{BucketUpperBound(i), count});
    }
  }
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  const uint64_t min = min_.load(std::memory_order_relaxed);
  snapshot.min = min == UINT64_MAX ? 0 : min;
  snapshot.max = max_.load(std::memory_order_relaxed);
  return snapshot;
}

// --- ValueHistogram ---------------------------------------------------------

ValueHistogram::ValueHistogram() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
}

size_t ValueHistogram::BucketIndex(uint64_t micro_value) {
  const size_t index =
      static_cast<size_t>(micro_value * kNumBuckets / kScale);
  return std::min(index, kNumBuckets - 1);
}

uint64_t ValueHistogram::BucketUpperBound(size_t index) {
  // Inclusive upper bound: bucket i covers micro-values < (i+1)*kScale/64,
  // except the last bucket which also holds exactly kScale.
  if (index + 1 == kNumBuckets) return kScale;
  return (index + 1) * kScale / kNumBuckets - 1;
}

uint64_t ValueHistogram::ToMicro(double value) {
  value = std::min(1.0, std::max(0.0, value));
  return static_cast<uint64_t>(
      std::llround(value * static_cast<double>(kScale)));
}

void ValueHistogram::Record(double value) {
  if (!std::isfinite(value)) return;
  const uint64_t micro = ToMicro(value);
  buckets_[BucketIndex(micro)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(micro, std::memory_order_relaxed);
  AtomicMin(&min_, micro);
  AtomicMax(&max_, micro);
}

void ValueHistogram::RecordBucketed(const uint64_t* counts, uint64_t total,
                                    uint64_t micro_sum, uint64_t micro_min,
                                    uint64_t micro_max) {
  if (total == 0) return;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (counts[i] > 0) {
      buckets_[i].fetch_add(counts[i], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(total, std::memory_order_relaxed);
  sum_.fetch_add(micro_sum, std::memory_order_relaxed);
  AtomicMin(&min_, micro_min);
  AtomicMax(&max_, micro_max);
}

HistogramSnapshot ValueHistogram::Snapshot() const {
  HistogramSnapshot snapshot;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t count = buckets_[i].load(std::memory_order_relaxed);
    if (count > 0) {
      snapshot.buckets.push_back(HistogramBucket{BucketUpperBound(i), count});
    }
  }
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  const uint64_t min = min_.load(std::memory_order_relaxed);
  snapshot.min = min == UINT64_MAX ? 0 : min;
  snapshot.max = max_.load(std::memory_order_relaxed);
  return snapshot;
}

// --- TraceSpan --------------------------------------------------------------

uint64_t TraceSpan::Stop() {
  if (stopped_) return elapsed_ns_;
  stopped_ = true;
  elapsed_ns_ = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
  if (histogram_ != nullptr) histogram_->Record(elapsed_ns_);
  const double ms = static_cast<double>(elapsed_ns_) / 1e6;
  if (out_ms_ != nullptr) *out_ms_ = ms;
  if (trace_stages_ != nullptr) {
    trace_stages_->push_back(TraceStageSpan{stage_, ms});
  }
  return elapsed_ns_;
}

// --- MetricsSnapshot lookups ------------------------------------------------

namespace {

template <typename Entry>
const Entry* Find(const std::vector<Entry>& entries, const std::string& name,
                  const MetricLabels& labels) {
  for (const Entry& entry : entries) {
    if (entry.name == name && entry.labels == labels) return &entry;
  }
  return nullptr;
}

}  // namespace

const CounterSnapshot* MetricsSnapshot::FindCounter(
    const std::string& name, const MetricLabels& labels) const {
  return Find(counters, name, labels);
}

const GaugeSnapshot* MetricsSnapshot::FindGauge(
    const std::string& name, const MetricLabels& labels) const {
  return Find(gauges, name, labels);
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name, const MetricLabels& labels) const {
  return Find(histograms, name, labels);
}

}  // namespace learnrisk
