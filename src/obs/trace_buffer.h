// Copyright 2026 The LearnRisk Authors
// Fixed-size lock-free ring of completed request traces — the sampled
// audit log behind Gateway::RecentTraces(). Push claims a slot with one
// relaxed fetch_add on the head counter and swaps the trace in with one
// atomic shared_ptr exchange, so a capturing request never blocks on
// scrapers (or other capturers): no locks, no waiting, drop-oldest on
// overflow with exact accounting. Scrapers read each slot with an atomic
// load and share the immutable RequestTrace by shared_ptr, so a trace is
// either absent or complete — never torn. Capture policy (head sampling,
// slow/high-risk tail capture) lives in the gateway; this type only
// stores. Semantics documented in docs/TRACING.md.

#ifndef LEARNRISK_OBS_TRACE_BUFFER_H_
#define LEARNRISK_OBS_TRACE_BUFFER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/trace.h"

namespace learnrisk {

class TraceBuffer {
 public:
  /// \brief A ring holding the most recent `capacity` captured traces
  /// (clamped to at least 1).
  explicit TraceBuffer(size_t capacity);
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// \brief Publishes a completed trace, overwriting the oldest slot when
  /// the ring is full. Lock-free and wait-free apart from the shared_ptr
  /// refcount; safe from any number of threads.
  void Push(std::shared_ptr<const RequestTrace> trace);

  /// \brief Point-in-time copy of the resident traces, sorted by
  /// request id. Never blocks writers; a concurrently pushed trace is
  /// either fully present or absent.
  std::vector<std::shared_ptr<const RequestTrace>> Snapshot() const;

  size_t capacity() const { return capacity_; }

  /// \brief Total traces ever pushed.
  uint64_t pushed() const { return pushed_.load(std::memory_order_relaxed); }

  /// \brief Traces overwritten before any scrape could have retained them —
  /// the overflow counter. Exact once pushers are quiescent:
  /// pushed() == dropped() + (traces resident in the ring).
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  const size_t capacity_;
  std::vector<std::shared_ptr<const RequestTrace>> slots_;
  std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> pushed_{0};
  std::atomic<uint64_t> dropped_{0};
};

}  // namespace learnrisk

#endif  // LEARNRISK_OBS_TRACE_BUFFER_H_
