// Copyright 2026 The LearnRisk Authors

#include "risk/trainer.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "autodiff/tape.h"

namespace learnrisk {
namespace {

constexpr double kAdamBeta1 = 0.9;
constexpr double kAdamBeta2 = 0.999;
constexpr double kAdamEps = 1e-8;

/// Adam state for one flat parameter vector.
struct AdamState {
  std::vector<double> m;
  std::vector<double> v;
};

void AdamStep(std::vector<double>* params, const std::vector<double>& grads,
              AdamState* state, double lr, double bias1, double bias2) {
  for (size_t i = 0; i < params->size(); ++i) {
    state->m[i] = kAdamBeta1 * state->m[i] + (1.0 - kAdamBeta1) * grads[i];
    state->v[i] =
        kAdamBeta2 * state->v[i] + (1.0 - kAdamBeta2) * grads[i] * grads[i];
    (*params)[i] -= lr * (state->m[i] / bias1) /
                    (std::sqrt(state->v[i] / bias2) + kAdamEps);
  }
}

void GdStep(std::vector<double>* params, const std::vector<double>& grads,
            double lr) {
  for (size_t i = 0; i < params->size(); ++i) {
    (*params)[i] -= lr * grads[i];
  }
}

}  // namespace

Status RiskTrainer::Train(RiskModel* model, const RiskActivation& data,
                          const std::vector<uint8_t>& mislabeled) {
  if (data.size() != mislabeled.size()) {
    return Status::InvalidArgument(
        "activation size != mislabel flag count");
  }
  loss_history_.clear();

  std::vector<size_t> mis;
  std::vector<size_t> cor;
  for (size_t i = 0; i < mislabeled.size(); ++i) {
    (mislabeled[i] ? mis : cor).push_back(i);
  }
  if (mis.empty() || cor.empty()) {
    // Nothing to rank against; the prior model stands (see header).
    return Status::OK();
  }

  Rng rng(options_.seed);
  const size_t n_rules = model->num_rules();

  // Flat parameter vectors mirrored into the tape each epoch.
  std::vector<double> theta = model->theta();
  std::vector<double> phi = model->phi();
  double alpha_raw = model->alpha_raw();
  double beta_raw = model->beta_raw();
  std::vector<double> phi_out = model->phi_out();

  AdamState adam_theta{std::vector<double>(n_rules, 0.0),
                       std::vector<double>(n_rules, 0.0)};
  AdamState adam_phi = adam_theta;
  AdamState adam_out{std::vector<double>(phi_out.size(), 0.0),
                     std::vector<double>(phi_out.size(), 0.0)};
  double m_alpha = 0.0, v_alpha = 0.0, m_beta = 0.0, v_beta = 0.0;

  Tape tape;
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    tape.Clear();
    model->ApplyUpdate(theta, phi, alpha_raw, beta_raw, phi_out);
    RiskModel::TapeParams params = model->MakeTapeParams(&tape);

    // Epoch sample: a bounded subset of mislabeled and correct pairs.
    std::vector<size_t> epoch_mis = mis;
    std::vector<size_t> epoch_cor = cor;
    if (epoch_mis.size() > options_.max_mislabeled_per_epoch) {
      rng.Shuffle(&epoch_mis);
      epoch_mis.resize(options_.max_mislabeled_per_epoch);
    }
    if (epoch_cor.size() > options_.max_correct_per_epoch) {
      rng.Shuffle(&epoch_cor);
      epoch_cor.resize(options_.max_correct_per_epoch);
    }

    // Risk scores recorded once per distinct pair.
    std::unordered_map<size_t, Var> gamma;
    auto score_of = [&](size_t i) {
      auto it = gamma.find(i);
      if (it != gamma.end()) return it->second;
      Var g = model->RiskScoreOnTape(&tape, params, data.active[i],
                                     data.classifier_output[i],
                                     data.machine_label[i]);
      gamma.emplace(i, g);
      return g;
    };

    // Rank-pair sample and loss (Eq. 15 with target 1 for (mis, cor)).
    const size_t all_pairs = epoch_mis.size() * epoch_cor.size();
    const size_t n_pairs = std::min(all_pairs, options_.max_rank_pairs);
    Var loss = tape.Constant(0.0);
    if (all_pairs <= options_.max_rank_pairs) {
      for (size_t i : epoch_mis) {
        for (size_t j : epoch_cor) {
          loss = loss + SoftplusV(score_of(j) - score_of(i));
        }
      }
    } else {
      for (size_t k = 0; k < n_pairs; ++k) {
        const size_t i = epoch_mis[rng.Index(epoch_mis.size())];
        const size_t j = epoch_cor[rng.Index(epoch_cor.size())];
        loss = loss + SoftplusV(score_of(j) - score_of(i));
      }
    }
    loss = loss / static_cast<double>(n_pairs);
    loss_history_.push_back(loss.value());

    // L1 + L2 regularization on the effective rule weights (Sec. 6.2.3).
    if (options_.l1 > 0.0 || options_.l2 > 0.0) {
      Var reg = tape.Constant(0.0);
      for (size_t j = 0; j < n_rules; ++j) {
        Var w = SoftplusV(params.theta[j]);
        reg = reg + options_.l1 * Abs(w) + options_.l2 * Square(w);
      }
      loss = loss + reg;
    }

    tape.Backward(loss);

    std::vector<double> g_theta(n_rules);
    std::vector<double> g_phi(n_rules);
    for (size_t j = 0; j < n_rules; ++j) {
      g_theta[j] = tape.Gradient(params.theta[j]);
      g_phi[j] = tape.Gradient(params.phi[j]);
    }
    std::vector<double> g_out(phi_out.size());
    for (size_t b = 0; b < phi_out.size(); ++b) {
      g_out[b] = tape.Gradient(params.phi_out[b]);
    }
    const double g_alpha = tape.Gradient(params.alpha_raw);
    const double g_beta = tape.Gradient(params.beta_raw);

    if (options_.use_adam) {
      const double t = static_cast<double>(epoch + 1);
      const double bias1 = 1.0 - std::pow(kAdamBeta1, t);
      const double bias2 = 1.0 - std::pow(kAdamBeta2, t);
      AdamStep(&theta, g_theta, &adam_theta, options_.learning_rate, bias1,
               bias2);
      AdamStep(&phi, g_phi, &adam_phi, options_.learning_rate, bias1, bias2);
      AdamStep(&phi_out, g_out, &adam_out, options_.learning_rate, bias1,
               bias2);
      m_alpha = kAdamBeta1 * m_alpha + (1.0 - kAdamBeta1) * g_alpha;
      v_alpha = kAdamBeta2 * v_alpha + (1.0 - kAdamBeta2) * g_alpha * g_alpha;
      alpha_raw -= options_.learning_rate * (m_alpha / bias1) /
                   (std::sqrt(v_alpha / bias2) + kAdamEps);
      m_beta = kAdamBeta1 * m_beta + (1.0 - kAdamBeta1) * g_beta;
      v_beta = kAdamBeta2 * v_beta + (1.0 - kAdamBeta2) * g_beta * g_beta;
      beta_raw -= options_.learning_rate * (m_beta / bias1) /
                  (std::sqrt(v_beta / bias2) + kAdamEps);
    } else {
      GdStep(&theta, g_theta, options_.learning_rate);
      GdStep(&phi, g_phi, options_.learning_rate);
      GdStep(&phi_out, g_out, options_.learning_rate);
      alpha_raw -= options_.learning_rate * g_alpha;
      beta_raw -= options_.learning_rate * g_beta;
    }
  }

  model->ApplyUpdate(theta, phi, alpha_raw, beta_raw, phi_out);
  return Status::OK();
}

}  // namespace learnrisk
