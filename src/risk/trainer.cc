// Copyright 2026 The LearnRisk Authors

#include "risk/trainer.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "autodiff/tape.h"
#include "common/math_util.h"
#include "common/timer.h"

namespace learnrisk {
namespace {

constexpr double kAdamBeta1 = 0.9;
constexpr double kAdamBeta2 = 0.999;
constexpr double kAdamEps = 1e-8;

/// Adam state for one flat parameter vector.
struct AdamState {
  std::vector<double> m;
  std::vector<double> v;
};

void AdamStep(std::vector<double>* params, const std::vector<double>& grads,
              AdamState* state, double lr, double bias1, double bias2) {
  for (size_t i = 0; i < params->size(); ++i) {
    state->m[i] = kAdamBeta1 * state->m[i] + (1.0 - kAdamBeta1) * grads[i];
    state->v[i] =
        kAdamBeta2 * state->v[i] + (1.0 - kAdamBeta2) * grads[i] * grads[i];
    (*params)[i] -= lr * (state->m[i] / bias1) /
                    (std::sqrt(state->v[i] / bias2) + kAdamEps);
  }
}

void GdStep(std::vector<double>* params, const std::vector<double>& grads,
            double lr) {
  for (size_t i = 0; i < params->size(); ++i) {
    (*params)[i] -= lr * grads[i];
  }
}

/// One epoch's sampled rank pairs. `indices` lists the global activation
/// indices to score (the mislabeled block first, then the correct block);
/// `pairs` holds (mislabeled, correct) positions into that list. Both paths
/// draw from the RNG in the same order, so seeded runs are comparable.
struct EpochSample {
  std::vector<size_t> indices;
  size_t num_mis = 0;
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
};

/// Bounded index draw via Lemire's multiply-shift reduction straight off the
/// 64-bit engine — an order of magnitude cheaper than constructing a
/// uniform_int_distribution per draw, and the epoch loop draws tens of
/// thousands of these. The modulo bias is < n / 2^64, far below sampling
/// noise.
size_t FastIndex(Rng* rng, size_t n) {
  const unsigned __int128 wide =
      static_cast<unsigned __int128>(rng->engine()()) * n;
  return static_cast<size_t>(wide >> 64);
}

/// Partial Fisher-Yates: randomizes the first `k` slots of `pool` (k draws
/// instead of a full shuffle of the pool). Starting from the previous
/// epoch's permutation is fine — any starting order yields uniform
/// k-subsets.
void SampleFront(std::vector<size_t>* pool, size_t k, Rng* rng) {
  const size_t n = pool->size();
  for (size_t i = 0; i < k; ++i) {
    std::swap((*pool)[i], (*pool)[i + FastIndex(rng, n - i)]);
  }
}

/// Draws one epoch's scored indices and rank pairs into `sample`, reusing
/// its buffers. `mis_pool`/`cor_pool` persist across epochs as sampling
/// scratch.
void DrawEpochSample(std::vector<size_t>* mis_pool,
                     std::vector<size_t>* cor_pool,
                     const RiskTrainerOptions& options, Rng* rng,
                     EpochSample* sample) {
  const size_t num_mis =
      std::min(mis_pool->size(), options.max_mislabeled_per_epoch);
  const size_t num_cor =
      std::min(cor_pool->size(), options.max_correct_per_epoch);
  if (num_mis < mis_pool->size()) SampleFront(mis_pool, num_mis, rng);
  if (num_cor < cor_pool->size()) SampleFront(cor_pool, num_cor, rng);

  sample->num_mis = num_mis;
  sample->indices.clear();
  sample->indices.insert(sample->indices.end(), mis_pool->begin(),
                         mis_pool->begin() + static_cast<long>(num_mis));
  sample->indices.insert(sample->indices.end(), cor_pool->begin(),
                         cor_pool->begin() + static_cast<long>(num_cor));

  sample->pairs.clear();
  const size_t all_pairs = num_mis * num_cor;
  if (all_pairs <= options.max_rank_pairs) {
    sample->pairs.reserve(all_pairs);
    for (size_t a = 0; a < num_mis; ++a) {
      for (size_t b = 0; b < num_cor; ++b) {
        sample->pairs.emplace_back(static_cast<uint32_t>(a),
                                   static_cast<uint32_t>(num_mis + b));
      }
    }
  } else {
    sample->pairs.reserve(options.max_rank_pairs);
    for (size_t k = 0; k < options.max_rank_pairs; ++k) {
      const size_t a = FastIndex(rng, num_mis);
      const size_t b = FastIndex(rng, num_cor);
      sample->pairs.emplace_back(static_cast<uint32_t>(a),
                                 static_cast<uint32_t>(num_mis + b));
    }
  }
}

/// Flat parameter vector <-> model, using RiskModel's flat layout.
std::vector<double> GatherParams(const RiskModel& model) {
  const size_t num_rules = model.num_rules();
  std::vector<double> params(model.num_params());
  std::copy(model.theta().begin(), model.theta().end(), params.begin());
  std::copy(model.phi().begin(), model.phi().end(),
            params.begin() + static_cast<long>(num_rules));
  params[model.alpha_offset()] = model.alpha_raw();
  params[model.beta_offset()] = model.beta_raw();
  std::copy(model.phi_out().begin(), model.phi_out().end(),
            params.begin() + static_cast<long>(model.phi_out_offset()));
  return params;
}

void ScatterParams(const std::vector<double>& params, RiskModel* model) {
  const size_t num_rules = model->num_rules();
  std::vector<double> theta(params.begin(),
                            params.begin() + static_cast<long>(num_rules));
  std::vector<double> phi(
      params.begin() + static_cast<long>(num_rules),
      params.begin() + static_cast<long>(2 * num_rules));
  std::vector<double> phi_out(
      params.begin() + static_cast<long>(model->phi_out_offset()),
      params.end());
  model->ApplyUpdate(theta, phi, params[model->alpha_offset()],
                     params[model->beta_offset()], phi_out);
}

/// Analytic fast path (the default): one batched forward/Jacobian pass, the
/// rank loss gradient in closed form, then a Jacobian-transpose multiply.
/// No tape nodes are recorded.
double FastEpoch(RiskModel* model, const RiskActivation& data,
                 const EpochSample& sample, const RiskTrainerOptions& options,
                 RiskModel::BatchScore* batch, std::vector<double>* coef,
                 std::vector<double>* grad) {
  model->RiskScoreBatch(data, sample.indices, batch, options.num_threads);

  // Rank loss (Eq. 15): mean softplus(gamma_cor - gamma_mis), summed in the
  // same pair order as the tape path so the values agree bit-for-bit.
  // Softplus and its sigmoid derivative share one exp(-|t|) (the same
  // branches math_util takes, so the loss stays bit-identical).
  const double n_pairs = static_cast<double>(sample.pairs.size());
  coef->assign(sample.indices.size(), 0.0);
  double loss = 0.0;
  const double inv_pairs = 1.0 / n_pairs;
  for (const auto& [a, b] : sample.pairs) {
    const double t = batch->value[b] - batch->value[a];
    const double e = std::exp(-std::fabs(t));
    loss = loss + (std::max(t, 0.0) + std::log1p(e));
    // dL/dgamma: each pair adds sigmoid(t)/n to the correct side and
    // subtracts it from the mislabeled side. The select compiles to a cmov
    // (sign of t is data-dependent and unpredictable); gradient-path
    // arithmetic, so the single reciprocal is fine.
    const double inv = 1.0 / (1.0 + e);
    const double g = (t >= 0.0 ? inv : 1.0 - inv) * inv_pairs;
    (*coef)[b] += g;
    (*coef)[a] -= g;
  }
  loss = loss / n_pairs;

  // Full parameter gradient: a Jacobian-transpose multiply over the CSR
  // sparsity pattern — each row touches its active rules (theta and phi),
  // alpha/beta, and its output bucket.
  const size_t num_rules = model->num_rules();
  const size_t alpha = model->alpha_offset();
  const size_t phi_out = model->phi_out_offset();
  grad->assign(batch->num_params, 0.0);
  for (size_t k = 0; k < sample.indices.size(); ++k) {
    const double c = (*coef)[k];
    if (c == 0.0) continue;
    for (size_t e = batch->offset[k]; e < batch->offset[k + 1]; ++e) {
      (*grad)[batch->rule[e]] += c * batch->dtheta[e];
      (*grad)[num_rules + batch->rule[e]] += c * batch->dphi[e];
    }
    (*grad)[alpha] += c * batch->dalpha[k];
    (*grad)[alpha + 1] += c * batch->dbeta[k];
    (*grad)[phi_out + batch->bucket[k]] += c * batch->dbucket[k];
  }

  // L1 + L2 on the effective rule weights, in closed form. The tape path's
  // Abs sub-gradient is 0 at exactly 0; softplus weights are positive, so
  // the sign term is 1 whenever the weight hasn't underflowed.
  if (options.l1 > 0.0 || options.l2 > 0.0) {
    for (size_t j = 0; j < model->num_rules(); ++j) {
      const double theta_j = model->theta()[j];
      const double w = Softplus(theta_j);
      const double sign = w > 0.0 ? 1.0 : 0.0;
      (*grad)[j] +=
          (options.l1 * sign + options.l2 * 2.0 * w) * Sigmoid(theta_j);
    }
  }
  return loss;
}

/// Original tape path, kept behind options.use_tape for parity testing. The
/// parameter leaves are recorded once; each epoch rewinds to the checkpoint,
/// refreshes the leaf values, and re-records only the loss subgraph.
class TapeTrainer {
 public:
  TapeTrainer(const RiskModel& model, size_t reserve_hint) {
    tape_.Reserve(reserve_hint);
    params_ = model.MakeTapeParams(&tape_);
    mark_ = tape_.Checkpoint();
  }

  double RunEpoch(const RiskModel& model, const RiskActivation& data,
                  const std::vector<double>& flat_params,
                  const EpochSample& sample,
                  const RiskTrainerOptions& options,
                  std::vector<double>* grad) {
    const size_t num_rules = model.num_rules();
    tape_.Rewind(mark_);
    for (size_t j = 0; j < num_rules; ++j) {
      tape_.SetValue(params_.theta[j], flat_params[j]);
      tape_.SetValue(params_.phi[j], flat_params[num_rules + j]);
    }
    tape_.SetValue(params_.alpha_raw, flat_params[model.alpha_offset()]);
    tape_.SetValue(params_.beta_raw, flat_params[model.beta_offset()]);
    for (size_t b = 0; b < params_.phi_out.size(); ++b) {
      tape_.SetValue(params_.phi_out[b],
                     flat_params[model.phi_out_offset() + b]);
    }

    // Risk scores recorded once per scored pair, lazily in pair order (the
    // same recording order as the historical Clear()+rebuild loop).
    std::vector<Var> scores(sample.indices.size());
    std::vector<char> scored(sample.indices.size(), 0);
    auto score_at = [&](uint32_t pos) {
      if (!scored[pos]) {
        const size_t i = sample.indices[pos];
        scores[pos] = model.RiskScoreOnTape(&tape_, params_, data.active[i],
                                            data.classifier_output[i],
                                            data.machine_label[i]);
        scored[pos] = 1;
      }
      return scores[pos];
    };

    Var loss = tape_.Constant(0.0);
    for (const auto& [a, b] : sample.pairs) {
      Var cor = score_at(b);
      Var mis = score_at(a);
      loss = loss + SoftplusV(cor - mis);
    }
    loss = loss / static_cast<double>(sample.pairs.size());
    const double epoch_loss = loss.value();

    if (options.l1 > 0.0 || options.l2 > 0.0) {
      Var reg = tape_.Constant(0.0);
      for (size_t j = 0; j < num_rules; ++j) {
        Var w = SoftplusV(params_.theta[j]);
        reg = reg + options.l1 * Abs(w) + options.l2 * Square(w);
      }
      loss = loss + reg;
    }

    peak_nodes_ = std::max(peak_nodes_, tape_.size());
    tape_.Backward(loss);

    grad->assign(flat_params.size(), 0.0);
    for (size_t j = 0; j < num_rules; ++j) {
      (*grad)[j] = tape_.Gradient(params_.theta[j]);
      (*grad)[num_rules + j] = tape_.Gradient(params_.phi[j]);
    }
    (*grad)[model.alpha_offset()] = tape_.Gradient(params_.alpha_raw);
    (*grad)[model.beta_offset()] = tape_.Gradient(params_.beta_raw);
    for (size_t b = 0; b < params_.phi_out.size(); ++b) {
      (*grad)[model.phi_out_offset() + b] =
          tape_.Gradient(params_.phi_out[b]);
    }
    return epoch_loss;
  }

  size_t peak_nodes() const { return peak_nodes_; }

 private:
  Tape tape_;
  RiskModel::TapeParams params_;
  size_t mark_ = 0;
  size_t peak_nodes_ = 0;
};

}  // namespace

Status RiskTrainer::Train(RiskModel* model, const RiskActivation& data,
                          const std::vector<uint8_t>& mislabeled) {
  if (data.size() != mislabeled.size()) {
    return Status::InvalidArgument(
        "activation size != mislabel flag count");
  }
  loss_history_.clear();
  stats_ = RiskTrainerStats{};

  std::vector<size_t> mis;
  std::vector<size_t> cor;
  for (size_t i = 0; i < mislabeled.size(); ++i) {
    (mislabeled[i] ? mis : cor).push_back(i);
  }
  if (mis.empty() || cor.empty()) {
    // Nothing to rank against; the prior model stands (see header).
    return Status::OK();
  }

  Timer timer;
  Rng rng(options_.seed);
  const size_t num_params = model->num_params();

  std::vector<double> params = GatherParams(*model);
  std::vector<double> grad(num_params, 0.0);
  AdamState adam{std::vector<double>(num_params, 0.0),
                 std::vector<double>(num_params, 0.0)};

  std::unique_ptr<TapeTrainer> tape_trainer;
  if (options_.use_tape) {
    // ~40 nodes per score plus 3 per rank pair is a comfortable upper bound
    // for one epoch's subgraph.
    const size_t scored_bound =
        std::min(mis.size(), options_.max_mislabeled_per_epoch) +
        std::min(cor.size(), options_.max_correct_per_epoch);
    tape_trainer = std::make_unique<TapeTrainer>(
        *model, 64 * scored_bound + 4 * options_.max_rank_pairs);
  }
  RiskModel::BatchScore batch;
  std::vector<double> coef;
  EpochSample sample;

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    DrawEpochSample(&mis, &cor, options_, &rng, &sample);

    double epoch_loss = 0.0;
    if (options_.use_tape) {
      epoch_loss = tape_trainer->RunEpoch(*model, data, params, sample,
                                          options_, &grad);
    } else {
      ScatterParams(params, model);
      epoch_loss = FastEpoch(model, data, sample, options_, &batch, &coef,
                             &grad);
    }
    loss_history_.push_back(epoch_loss);
    stats_.rank_pairs += sample.pairs.size();
    stats_.scored_pairs += sample.indices.size();

    if (options_.use_adam) {
      const double t = static_cast<double>(epoch + 1);
      const double bias1 = 1.0 - std::pow(kAdamBeta1, t);
      const double bias2 = 1.0 - std::pow(kAdamBeta2, t);
      AdamStep(&params, grad, &adam, options_.learning_rate, bias1, bias2);
    } else {
      GdStep(&params, grad, options_.learning_rate);
    }
  }

  ScatterParams(params, model);
  stats_.epochs = options_.epochs;
  stats_.peak_tape_nodes = tape_trainer ? tape_trainer->peak_nodes() : 0;
  stats_.train_seconds = timer.ElapsedSeconds();
  return Status::OK();
}

}  // namespace learnrisk
