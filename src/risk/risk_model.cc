// Copyright 2026 The LearnRisk Authors

#include "risk/risk_model.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/parallel.h"

namespace learnrisk {
namespace {

// Local alias of the shared floor (risk_model.h) used throughout this file.
constexpr double kSigmaFloor = kRiskSigmaFloor;

double Logit(double p) {
  p = Clamp(p, 1e-9, 1.0 - 1e-9);
  return std::log(p / (1.0 - p));
}

/// Per-batch precomputed parameter transforms, shared by every pair: one
/// softplus/sigmoid per rule and bucket for the whole batch instead of one
/// per (pair, rule) tape node.
struct BatchContext {
  double alpha = 0.0;
  double safe_alpha = 0.0;  ///< SafeDenominator(alpha), hoisted per batch
  double inv_alpha = 0.0;   ///< 1 / safe_alpha (gradient-path reciprocal)
  double beta = 0.0;
  double sig_alpha = 0.0;  ///< d softplus(alpha_raw)
  double sig_beta = 0.0;
  std::vector<double> w;         ///< softplus(theta_j)
  std::vector<double> dw;        ///< sigmoid(theta_j)
  std::vector<double> sigma;     ///< (sigmoid(phi_j) * rsd_max) * mu_j
  std::vector<double> dsigma;    ///< d sigma_j / d phi_j
  std::vector<double> s_out;     ///< sigmoid(phi_out_b)
};

}  // namespace

RiskModel::RiskModel(RiskFeatureSet features, RiskModelOptions options)
    : features_(std::move(features)), options_(options) {
  const size_t m = features_.num_rules();
  theta_.assign(m, SoftplusInverse(options_.init_rule_weight));
  phi_.assign(m, Logit(options_.init_rsd / options_.rsd_max));
  alpha_raw_ = SoftplusInverse(options_.init_alpha);
  beta_raw_ = SoftplusInverse(options_.init_beta);
  phi_out_.assign(options_.output_buckets,
                  Logit(options_.init_rsd / options_.rsd_max));
}

double RiskModel::RuleWeight(size_t j) const { return Softplus(theta_[j]); }

double RiskModel::RuleRsd(size_t j) const {
  return options_.rsd_max * Sigmoid(phi_[j]);
}

double RiskModel::OutputWeight(double x) const {
  const double alpha = Softplus(alpha_raw_);
  const double beta = Softplus(beta_raw_);
  const double z = (x - 0.5) / alpha;
  return -std::exp(-0.5 * z * z) + beta + 1.0;
}

size_t RiskModel::OutputBucket(double x) const {
  const double b = std::floor(Clamp(x, 0.0, 1.0) *
                              static_cast<double>(options_.output_buckets));
  return std::min(static_cast<size_t>(b), options_.output_buckets - 1);
}

double RiskModel::OutputRsd(double x) const {
  return options_.rsd_max * Sigmoid(phi_out_[OutputBucket(x)]);
}

PairDistribution RiskModel::Distribution(
    const std::vector<uint32_t>& active_rules, double classifier_output) const {
  // Classifier-output feature: expectation is the output itself (Sec. 6.2.1).
  const bool with_output =
      options_.use_classifier_feature || active_rules.empty();
  const double w_out = with_output ? OutputWeight(classifier_output) : 0.0;
  const double mu_out = Clamp(classifier_output, 0.0, 1.0);
  const double sigma_out = OutputRsd(classifier_output) * mu_out;

  double weight_sum = w_out;
  double mu_acc = w_out * mu_out;
  double var_acc = w_out * w_out * sigma_out * sigma_out;
  for (uint32_t j : active_rules) {
    const double w = RuleWeight(j);
    const double mu = features_.expectation(j);
    const double sigma = RuleRsd(j) * mu;
    weight_sum += w;
    mu_acc += w * mu;
    var_acc += w * w * sigma * sigma;
  }
  PairDistribution dist;
  dist.mu = mu_acc / weight_sum;
  dist.sigma = std::sqrt(var_acc) / weight_sum + kSigmaFloor;
  return dist;
}

double RiskModel::RiskScore(const std::vector<uint32_t>& active_rules,
                            double classifier_output,
                            uint8_t machine_label) const {
  const PairDistribution dist =
      Distribution(active_rules, classifier_output);
  const double theta = options_.var_confidence;
  switch (options_.metric) {
    case RiskMetric::kVaR:
      // Eq. 9-10: an unmatching-labeled pair is mislabeled with probability
      // p (its equivalence probability), so its worst-case loss is the upper
      // theta-quantile of p; matching labels mirror through 1 - p.
      if (machine_label == 0) {
        return TruncatedNormalQuantile(theta, dist.mu, dist.sigma, 0.0, 1.0);
      }
      return 1.0 -
             TruncatedNormalQuantile(1.0 - theta, dist.mu, dist.sigma, 0.0,
                                     1.0);
    case RiskMetric::kCVaR: {
      if (machine_label == 0) {
        const double var =
            TruncatedNormalQuantile(theta, dist.mu, dist.sigma, 0.0, 1.0);
        return TruncatedNormalMean(dist.mu, dist.sigma, var, 1.0);
      }
      const double var =
          TruncatedNormalQuantile(1.0 - theta, dist.mu, dist.sigma, 0.0, 1.0);
      return 1.0 - TruncatedNormalMean(dist.mu, dist.sigma, 0.0, var);
    }
    case RiskMetric::kExpectation: {
      const double mean = TruncatedNormalMean(dist.mu, dist.sigma, 0.0, 1.0);
      return machine_label == 0 ? mean : 1.0 - mean;
    }
  }
  return 0.0;
}

std::vector<double> RiskModel::Score(const RiskActivation& activation) const {
  std::vector<double> scores(activation.size());
  ParallelFor(activation.size(), [&](size_t i) {
    scores[i] = RiskScore(activation.active[i],
                          activation.classifier_output[i],
                          activation.machine_label[i]);
  });
  return scores;
}

void RiskModel::RiskScoreBatch(const RiskActivation& activation,
                               const std::vector<size_t>& indices,
                               BatchScore* out, size_t num_threads) const {
  const size_t n = indices.size();
  out->num_params = num_params();
  out->value.resize(n);
  out->dalpha.resize(n);
  out->dbeta.resize(n);
  out->dbucket.resize(n);
  out->bucket.resize(n);
  // CSR offsets over each pair's active-rule list: count/prefix/fill — a
  // parallel count pass, a serial prefix sum, and the parallel per-pair fill
  // below writing every jacobian row into its final slice in place.
  out->offset.resize(n + 1);
  out->offset[0] = 0;
  ParallelFor(
      n,
      [&](size_t k) {
        out->offset[k + 1] = activation.active[indices[k]].size();
      },
      num_threads);
  for (size_t k = 0; k < n; ++k) out->offset[k + 1] += out->offset[k];
  const size_t nnz = out->offset[n];
  out->rule.resize(nnz);
  out->dtheta.resize(nnz);
  out->dphi.resize(nnz);

  // Parameter transforms, once per batch.
  BatchContext ctx;
  ctx.alpha = Softplus(alpha_raw_);
  ctx.safe_alpha = SafeDenominator(ctx.alpha);
  ctx.inv_alpha = 1.0 / ctx.safe_alpha;
  ctx.beta = Softplus(beta_raw_);
  ctx.sig_alpha = Sigmoid(alpha_raw_);
  ctx.sig_beta = Sigmoid(beta_raw_);
  const size_t n_rules = num_rules();
  ctx.w.resize(n_rules);
  ctx.dw.resize(n_rules);
  ctx.sigma.resize(n_rules);
  ctx.dsigma.resize(n_rules);
  for (size_t j = 0; j < n_rules; ++j) {
    ctx.w[j] = Softplus(theta_[j]);
    ctx.dw[j] = Sigmoid(theta_[j]);
    const double s = Sigmoid(phi_[j]);
    const double mu_j = features_.expectation(j);
    ctx.sigma[j] = (s * options_.rsd_max) * mu_j;
    ctx.dsigma[j] = s * (1.0 - s) * options_.rsd_max * mu_j;
  }
  ctx.s_out.resize(phi_out_.size());
  for (size_t b = 0; b < phi_out_.size(); ++b) {
    ctx.s_out[b] = Sigmoid(phi_out_[b]);
  }

  const double rsd_max = options_.rsd_max;
  const double theta_conf = options_.var_confidence;
  const RiskMetric metric = options_.metric;

  ParallelFor(
      n,
      [&](size_t k) {
        const size_t i = indices[k];
        const std::vector<uint32_t>& active = activation.active[i];
        const uint8_t label = activation.machine_label[i];

        // --- Forward pass: the exact arithmetic of RiskScoreOnTape. -------
        const bool with_output =
            options_.use_classifier_feature || active.empty();
        const double x = Clamp(activation.classifier_output[i], 0.0, 1.0);
        const size_t bucket = OutputBucket(x);
        const double m = with_output ? 1.0 : 0.0;
        const double z = (x - 0.5) / ctx.safe_alpha;
        const double eg = std::exp(-0.5 * (z * z));
        const double w_out = ((-eg + ctx.beta) + 1.0) * m;
        const double rsd_out = ctx.s_out[bucket] * rsd_max;
        const double sigma_out = rsd_out * x;

        double weight_sum = w_out;
        double mu_acc = w_out * x;
        double var_acc = (w_out * w_out) * (sigma_out * sigma_out);
        for (uint32_t j : active) {
          weight_sum = weight_sum + ctx.w[j];
          mu_acc = mu_acc + ctx.w[j] * features_.expectation(j);
          var_acc = var_acc + (ctx.w[j] * ctx.w[j]) *
                                  (ctx.sigma[j] * ctx.sigma[j]);
        }
        const double safe_sum = SafeDenominator(weight_sum);
        const double mu = mu_acc / safe_sum;
        const double root = std::sqrt(std::max(var_acc, 0.0));
        const double root_over_sum = root / safe_sum;
        const double sigma = root_over_sum + kSigmaFloor;

        // --- Reverse chain collapsed to a linear functional: ---------------
        //   d value = c_mu * d mu + c_sigma * d sigma
        // with the tape's exact sub-gradient conventions (clamp kinks give
        // zero, the quantile's input clamp passes gradient through).
        double value = 0.0;
        double c_mu = 0.0;
        double c_sigma = 0.0;
        const double sgn = label == 0 ? 1.0 : -1.0;
        if (metric == RiskMetric::kExpectation) {
          value = label == 0 ? mu : 1.0 - mu;
          c_mu = sgn;
        } else {
          const double p = label == 0 ? theta_conf : 1.0 - theta_conf;
          const double safe_sigma = SafeDenominator(sigma);
          const double as = (0.0 - mu) / safe_sigma;
          const double bs = (1.0 - mu) / safe_sigma;
          const double ca = NormalCdf(as);
          const double cb = NormalCdf(bs);
          const double u = ca + (cb - ca) * p;
          const double uc = Clamp(u, 1e-12, 1.0 - 1e-12);
          const double q = NormalQuantile(uc);
          const double dq_du = 1.0 / std::max(NormalPdf(q), 1e-300);
          const double q_raw = mu + sigma * q;
          const double quantile = Clamp(q_raw, 0.0, 1.0);
          value = label == 0 ? quantile : 1.0 - quantile;

          if (q_raw > 0.0 && q_raw < 1.0) {
            // du/dmu and du/dsigma through both normal CDFs. Gradient-only
            // arithmetic (1e-6 parity budget), so divisions fold into one
            // reciprocal.
            const double inv_sigma = 1.0 / safe_sigma;
            const double wa = (1.0 - p) * NormalPdf(as);
            const double wb = p * NormalPdf(bs);
            const double du_dmu = -(wa + wb) * inv_sigma;
            const double du_dsigma = -(wa * as + wb * bs) * inv_sigma;
            c_mu = sgn * (1.0 + sigma * dq_du * du_dmu);
            c_sigma = sgn * (q + sigma * dq_du * du_dsigma);
          }
        }
        out->value[k] = value;

        // Pull (c_mu, c_sigma) back onto the portfolio accumulators
        // (S, M, V) = (weight_sum, mu_acc, var_acc):
        //   mu    = M / S
        //   sigma = sqrt(V) / S + floor
        const double inv_sum = 1.0 / safe_sum;
        const double d_root = root > 0.0 ? 0.5 / root : 0.0;
        const double c_M = c_mu * inv_sum;
        const double c_S =
            -(c_mu * mu + c_sigma * root_over_sum) * inv_sum;
        const double c_V = c_sigma * d_root * inv_sum;

        // Sparse parameter partials: active rules (CSR slice), alpha/beta,
        // one bucket.
        size_t e = out->offset[k];
        for (uint32_t j : active) {
          const double dS = ctx.dw[j];
          out->rule[e] = j;
          out->dtheta[e] =
              dS * (c_S + c_M * features_.expectation(j) +
                    c_V * 2.0 * ctx.w[j] * (ctx.sigma[j] * ctx.sigma[j]));
          out->dphi[e] = c_V * (ctx.w[j] * ctx.w[j]) * 2.0 * ctx.sigma[j] *
                         ctx.dsigma[j];
          ++e;
        }
        // d w_out / d alpha_raw: through z = (x - 0.5) / softplus(alpha_raw)
        // and exp(-z^2 / 2).
        const double dwout_da =
            m * eg * z * (-z * ctx.inv_alpha) * ctx.sig_alpha;
        const double dwout_db = m * ctx.sig_beta;
        const double out_common =
            c_S + c_M * x + c_V * 2.0 * w_out * (sigma_out * sigma_out);
        out->dalpha[k] = dwout_da * out_common;
        out->dbeta[k] = dwout_db * out_common;
        out->bucket[k] = static_cast<uint32_t>(bucket);
        out->dbucket[k] =
            c_V * (w_out * w_out) * 2.0 * sigma_out *
            (ctx.s_out[bucket] * (1.0 - ctx.s_out[bucket]) * rsd_max * x);
      },
      num_threads);
}

std::vector<RiskContribution> RiskModel::Explain(
    const std::vector<uint32_t>& active_rules, double classifier_output,
    size_t top_k) const {
  std::vector<RiskContribution> contributions;
  double weight_sum = OutputWeight(classifier_output);
  for (uint32_t j : active_rules) weight_sum += RuleWeight(j);

  RiskContribution out;
  out.description =
      "classifier output p=" + std::to_string(classifier_output);
  out.weight = OutputWeight(classifier_output) / weight_sum;
  out.expectation = classifier_output;
  out.rsd = OutputRsd(classifier_output);
  contributions.push_back(std::move(out));

  for (uint32_t j : active_rules) {
    RiskContribution c;
    c.description = features_.rule(j).ToString();
    c.weight = RuleWeight(j) / weight_sum;
    c.expectation = features_.expectation(j);
    c.rsd = RuleRsd(j);
    contributions.push_back(std::move(c));
  }
  std::stable_sort(contributions.begin(), contributions.end(),
                   [](const RiskContribution& a, const RiskContribution& b) {
                     return a.weight > b.weight;
                   });
  if (contributions.size() > top_k) contributions.resize(top_k);
  return contributions;
}

RiskModel::TapeParams RiskModel::MakeTapeParams(Tape* tape) const {
  TapeParams params;
  params.theta.reserve(theta_.size());
  for (double t : theta_) params.theta.push_back(tape->Variable(t));
  params.phi.reserve(phi_.size());
  for (double p : phi_) params.phi.push_back(tape->Variable(p));
  params.alpha_raw = tape->Variable(alpha_raw_);
  params.beta_raw = tape->Variable(beta_raw_);
  params.phi_out.reserve(phi_out_.size());
  for (double p : phi_out_) params.phi_out.push_back(tape->Variable(p));
  return params;
}

Var RiskModel::RiskScoreOnTape(Tape* tape, const TapeParams& params,
                               const std::vector<uint32_t>& active_rules,
                               double classifier_output,
                               uint8_t machine_label) const {
  // Classifier-output feature.
  const bool with_output =
      options_.use_classifier_feature || active_rules.empty();
  const double x = Clamp(classifier_output, 0.0, 1.0);
  Var alpha = SoftplusV(params.alpha_raw);
  Var beta = SoftplusV(params.beta_raw);
  Var z = (tape->Constant(x) - 0.5) / alpha;
  Var w_out = (-Exp(-0.5 * (z * z)) + beta + 1.0) * (with_output ? 1.0 : 0.0);
  Var rsd_out = options_.rsd_max * SigmoidV(params.phi_out[OutputBucket(x)]);
  Var sigma_out = rsd_out * x;

  Var weight_sum = w_out;
  Var mu_acc = w_out * x;
  Var var_acc = Square(w_out) * Square(sigma_out);
  for (uint32_t j : active_rules) {
    Var w = SoftplusV(params.theta[j]);
    const double mu = features_.expectation(j);
    Var sigma = (options_.rsd_max * SigmoidV(params.phi[j])) * mu;
    weight_sum = weight_sum + w;
    mu_acc = mu_acc + w * mu;
    var_acc = var_acc + Square(w) * Square(sigma);
  }
  Var mu = mu_acc / weight_sum;
  Var sigma = Sqrt(var_acc) / weight_sum + kSigmaFloor;

  if (options_.metric == RiskMetric::kExpectation) {
    // Ablation path: rank by the distribution mean only (no fluctuation
    // term). kCVaR trains against the VaR surrogate, which shares its
    // optimum ranking.
    return machine_label == 0 ? mu : 1.0 - mu;
  }

  // Truncated-normal quantile on tape:
  //   F^{-1}(p) = mu + sigma * Phi^{-1}(Phi(a) + p (Phi(b) - Phi(a))).
  const double theta = options_.var_confidence;
  const double p = machine_label == 0 ? theta : 1.0 - theta;
  Var ca = NormalCdfV((0.0 - mu) / sigma);
  Var cb = NormalCdfV((1.0 - mu) / sigma);
  Var u = ca + p * (cb - ca);
  Var quantile = ClampV(mu + sigma * NormalQuantileV(u), 0.0, 1.0);
  if (machine_label == 0) return quantile;
  return 1.0 - quantile;
}

void RiskModel::ApplyUpdate(const std::vector<double>& theta,
                            const std::vector<double>& phi, double alpha_raw,
                            double beta_raw,
                            const std::vector<double>& phi_out) {
  theta_ = theta;
  phi_ = phi;
  alpha_raw_ = alpha_raw;
  beta_raw_ = beta_raw;
  phi_out_ = phi_out;
}

}  // namespace learnrisk
