// Copyright 2026 The LearnRisk Authors

#include "risk/risk_model.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace learnrisk {
namespace {

// Keeps portfolio variances strictly positive so quantile gradients exist.
constexpr double kSigmaFloor = 1e-6;

double Logit(double p) {
  p = Clamp(p, 1e-9, 1.0 - 1e-9);
  return std::log(p / (1.0 - p));
}

}  // namespace

RiskModel::RiskModel(RiskFeatureSet features, RiskModelOptions options)
    : features_(std::move(features)), options_(options) {
  const size_t m = features_.num_rules();
  theta_.assign(m, SoftplusInverse(options_.init_rule_weight));
  phi_.assign(m, Logit(options_.init_rsd / options_.rsd_max));
  alpha_raw_ = SoftplusInverse(options_.init_alpha);
  beta_raw_ = SoftplusInverse(options_.init_beta);
  phi_out_.assign(options_.output_buckets,
                  Logit(options_.init_rsd / options_.rsd_max));
}

double RiskModel::RuleWeight(size_t j) const { return Softplus(theta_[j]); }

double RiskModel::RuleRsd(size_t j) const {
  return options_.rsd_max * Sigmoid(phi_[j]);
}

double RiskModel::OutputWeight(double x) const {
  const double alpha = Softplus(alpha_raw_);
  const double beta = Softplus(beta_raw_);
  const double z = (x - 0.5) / alpha;
  return -std::exp(-0.5 * z * z) + beta + 1.0;
}

size_t RiskModel::OutputBucket(double x) const {
  const double b = std::floor(Clamp(x, 0.0, 1.0) *
                              static_cast<double>(options_.output_buckets));
  return std::min(static_cast<size_t>(b), options_.output_buckets - 1);
}

double RiskModel::OutputRsd(double x) const {
  return options_.rsd_max * Sigmoid(phi_out_[OutputBucket(x)]);
}

PairDistribution RiskModel::Distribution(
    const std::vector<uint32_t>& active_rules, double classifier_output) const {
  // Classifier-output feature: expectation is the output itself (Sec. 6.2.1).
  const bool with_output =
      options_.use_classifier_feature || active_rules.empty();
  const double w_out = with_output ? OutputWeight(classifier_output) : 0.0;
  const double mu_out = Clamp(classifier_output, 0.0, 1.0);
  const double sigma_out = OutputRsd(classifier_output) * mu_out;

  double weight_sum = w_out;
  double mu_acc = w_out * mu_out;
  double var_acc = w_out * w_out * sigma_out * sigma_out;
  for (uint32_t j : active_rules) {
    const double w = RuleWeight(j);
    const double mu = features_.expectation(j);
    const double sigma = RuleRsd(j) * mu;
    weight_sum += w;
    mu_acc += w * mu;
    var_acc += w * w * sigma * sigma;
  }
  PairDistribution dist;
  dist.mu = mu_acc / weight_sum;
  dist.sigma = std::sqrt(var_acc) / weight_sum + kSigmaFloor;
  return dist;
}

double RiskModel::RiskScore(const std::vector<uint32_t>& active_rules,
                            double classifier_output,
                            uint8_t machine_label) const {
  const PairDistribution dist =
      Distribution(active_rules, classifier_output);
  const double theta = options_.var_confidence;
  switch (options_.metric) {
    case RiskMetric::kVaR:
      // Eq. 9-10: an unmatching-labeled pair is mislabeled with probability
      // p (its equivalence probability), so its worst-case loss is the upper
      // theta-quantile of p; matching labels mirror through 1 - p.
      if (machine_label == 0) {
        return TruncatedNormalQuantile(theta, dist.mu, dist.sigma, 0.0, 1.0);
      }
      return 1.0 -
             TruncatedNormalQuantile(1.0 - theta, dist.mu, dist.sigma, 0.0,
                                     1.0);
    case RiskMetric::kCVaR: {
      if (machine_label == 0) {
        const double var =
            TruncatedNormalQuantile(theta, dist.mu, dist.sigma, 0.0, 1.0);
        return TruncatedNormalMean(dist.mu, dist.sigma, var, 1.0);
      }
      const double var =
          TruncatedNormalQuantile(1.0 - theta, dist.mu, dist.sigma, 0.0, 1.0);
      return 1.0 - TruncatedNormalMean(dist.mu, dist.sigma, 0.0, var);
    }
    case RiskMetric::kExpectation: {
      const double mean = TruncatedNormalMean(dist.mu, dist.sigma, 0.0, 1.0);
      return machine_label == 0 ? mean : 1.0 - mean;
    }
  }
  return 0.0;
}

std::vector<double> RiskModel::Score(const RiskActivation& activation) const {
  std::vector<double> scores(activation.size());
  for (size_t i = 0; i < activation.size(); ++i) {
    scores[i] = RiskScore(activation.active[i],
                          activation.classifier_output[i],
                          activation.machine_label[i]);
  }
  return scores;
}

std::vector<RiskContribution> RiskModel::Explain(
    const std::vector<uint32_t>& active_rules, double classifier_output,
    size_t top_k) const {
  std::vector<RiskContribution> contributions;
  double weight_sum = OutputWeight(classifier_output);
  for (uint32_t j : active_rules) weight_sum += RuleWeight(j);

  RiskContribution out;
  out.description =
      "classifier output p=" + std::to_string(classifier_output);
  out.weight = OutputWeight(classifier_output) / weight_sum;
  out.expectation = classifier_output;
  out.rsd = OutputRsd(classifier_output);
  contributions.push_back(std::move(out));

  for (uint32_t j : active_rules) {
    RiskContribution c;
    c.description = features_.rule(j).ToString();
    c.weight = RuleWeight(j) / weight_sum;
    c.expectation = features_.expectation(j);
    c.rsd = RuleRsd(j);
    contributions.push_back(std::move(c));
  }
  std::stable_sort(contributions.begin(), contributions.end(),
                   [](const RiskContribution& a, const RiskContribution& b) {
                     return a.weight > b.weight;
                   });
  if (contributions.size() > top_k) contributions.resize(top_k);
  return contributions;
}

RiskModel::TapeParams RiskModel::MakeTapeParams(Tape* tape) const {
  TapeParams params;
  params.theta.reserve(theta_.size());
  for (double t : theta_) params.theta.push_back(tape->Variable(t));
  params.phi.reserve(phi_.size());
  for (double p : phi_) params.phi.push_back(tape->Variable(p));
  params.alpha_raw = tape->Variable(alpha_raw_);
  params.beta_raw = tape->Variable(beta_raw_);
  params.phi_out.reserve(phi_out_.size());
  for (double p : phi_out_) params.phi_out.push_back(tape->Variable(p));
  return params;
}

Var RiskModel::RiskScoreOnTape(Tape* tape, const TapeParams& params,
                               const std::vector<uint32_t>& active_rules,
                               double classifier_output,
                               uint8_t machine_label) const {
  // Classifier-output feature.
  const bool with_output =
      options_.use_classifier_feature || active_rules.empty();
  const double x = Clamp(classifier_output, 0.0, 1.0);
  Var alpha = SoftplusV(params.alpha_raw);
  Var beta = SoftplusV(params.beta_raw);
  Var z = (tape->Constant(x) - 0.5) / alpha;
  Var w_out = (-Exp(-0.5 * (z * z)) + beta + 1.0) * (with_output ? 1.0 : 0.0);
  Var rsd_out = options_.rsd_max * SigmoidV(params.phi_out[OutputBucket(x)]);
  Var sigma_out = rsd_out * x;

  Var weight_sum = w_out;
  Var mu_acc = w_out * x;
  Var var_acc = Square(w_out) * Square(sigma_out);
  for (uint32_t j : active_rules) {
    Var w = SoftplusV(params.theta[j]);
    const double mu = features_.expectation(j);
    Var sigma = (options_.rsd_max * SigmoidV(params.phi[j])) * mu;
    weight_sum = weight_sum + w;
    mu_acc = mu_acc + w * mu;
    var_acc = var_acc + Square(w) * Square(sigma);
  }
  Var mu = mu_acc / weight_sum;
  Var sigma = Sqrt(var_acc) / weight_sum + kSigmaFloor;

  if (options_.metric == RiskMetric::kExpectation) {
    // Ablation path: rank by the distribution mean only (no fluctuation
    // term). kCVaR trains against the VaR surrogate, which shares its
    // optimum ranking.
    return machine_label == 0 ? mu : 1.0 - mu;
  }

  // Truncated-normal quantile on tape:
  //   F^{-1}(p) = mu + sigma * Phi^{-1}(Phi(a) + p (Phi(b) - Phi(a))).
  const double theta = options_.var_confidence;
  const double p = machine_label == 0 ? theta : 1.0 - theta;
  Var ca = NormalCdfV((0.0 - mu) / sigma);
  Var cb = NormalCdfV((1.0 - mu) / sigma);
  Var u = ca + p * (cb - ca);
  Var quantile = ClampV(mu + sigma * NormalQuantileV(u), 0.0, 1.0);
  if (machine_label == 0) return quantile;
  return 1.0 - quantile;
}

void RiskModel::ApplyUpdate(const std::vector<double>& theta,
                            const std::vector<double>& phi, double alpha_raw,
                            double beta_raw,
                            const std::vector<double>& phi_out) {
  theta_ = theta;
  phi_ = phi;
  alpha_raw_ = alpha_raw;
  beta_raw_ = beta_raw;
  phi_out_ = phi_out;
}

}  // namespace learnrisk
