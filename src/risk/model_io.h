// Copyright 2026 The LearnRisk Authors
// Risk-model persistence: serialize a trained RiskModel (rules, expectation
// priors, learned weights/RSDs/influence parameters) to a line-oriented text
// format and load it back. Lets a model trained on a validation workload be
// deployed against production pairs without retraining.
//
// Format (one record per line, '|'-separated; '#' comments ignored):
//   learnrisk-model v1
//   options <var_confidence> <metric> <rsd_max> <output_buckets> <use_out>
//   trainer <epochs> <lr> <l1> <l2> <max_mis> <max_cor> <max_pairs>
//           <use_adam> <use_tape> <seed>          (optional provenance)
//   params <alpha_raw> <beta_raw>
//   phi_out <b0> <b1> ...
//   rule <label> <support> <match_rate> <impurity> <expectation>
//        <train_support> <theta> <phi> <npreds> {<metric> <name> <gt> <thr>}*

#ifndef LEARNRISK_RISK_MODEL_IO_H_
#define LEARNRISK_RISK_MODEL_IO_H_

#include <string>

#include "common/status.h"
#include "risk/risk_model.h"
#include "risk/trainer.h"

namespace learnrisk {

/// \brief Serializes the model (including its rule set and priors) to text.
/// When `trainer` is non-null, a `trainer` provenance record is included so
/// a deployed model carries the hyperparameters it was trained with.
std::string SerializeRiskModel(const RiskModel& model,
                               const RiskTrainerOptions* trainer = nullptr);

/// \brief Reconstructs a model from SerializeRiskModel output. A `trainer`
/// record, if present, is parsed into `*trainer_out` (when non-null);
/// payloads without one leave `*trainer_out` at defaults, keeping old model
/// files loadable.
Result<RiskModel> DeserializeRiskModel(const std::string& text,
                                       RiskTrainerOptions* trainer_out =
                                           nullptr);

/// \brief Writes the serialized model to a file.
Status SaveRiskModel(const RiskModel& model, const std::string& path);

/// \brief Loads a model previously written by SaveRiskModel.
Result<RiskModel> LoadRiskModel(const std::string& path);

}  // namespace learnrisk

#endif  // LEARNRISK_RISK_MODEL_IO_H_
