// Copyright 2026 The LearnRisk Authors
// Risk-model persistence: serialize a trained RiskModel (rules, expectation
// priors, learned weights/RSDs/influence parameters) to a line-oriented text
// format and load it back. Lets a model trained on a validation workload be
// deployed against production pairs without retraining.
//
// Format (one record per line, '|'-separated; '#' comments ignored):
//   learnrisk-model v1
//   options <var_confidence> <metric> <rsd_max> <output_buckets> <use_out>
//   params <alpha_raw> <beta_raw>
//   phi_out <b0> <b1> ...
//   rule <label> <support> <match_rate> <impurity> <expectation>
//        <train_support> <theta> <phi> <npreds> {<metric> <name> <gt> <thr>}*

#ifndef LEARNRISK_RISK_MODEL_IO_H_
#define LEARNRISK_RISK_MODEL_IO_H_

#include <string>

#include "common/status.h"
#include "risk/risk_model.h"

namespace learnrisk {

/// \brief Serializes the model (including its rule set and priors) to text.
std::string SerializeRiskModel(const RiskModel& model);

/// \brief Reconstructs a model from SerializeRiskModel output.
Result<RiskModel> DeserializeRiskModel(const std::string& text);

/// \brief Writes the serialized model to a file.
Status SaveRiskModel(const RiskModel& model, const std::string& path);

/// \brief Loads a model previously written by SaveRiskModel.
Result<RiskModel> LoadRiskModel(const std::string& path);

}  // namespace learnrisk

#endif  // LEARNRISK_RISK_MODEL_IO_H_
