// Copyright 2026 The LearnRisk Authors
// The LearnRisk model (paper Sec. 4.2 and 6): each pair is a portfolio of its
// risk features; its equivalence probability follows a truncated normal
// aggregated from the feature distributions (Eq. 2-3); mislabeling risk is
// the Value-at-Risk of that distribution at confidence theta (Eq. 8-10).
//
// Learnable parameters (Sec. 6.2.1):
//   * per-rule weight      w_j   = softplus(theta_j)        (positivity)
//   * per-rule RSD         rsd_j = rsd_max * sigmoid(phi_j) (bounded, Eq. 12)
//   * influence function   f(x)  = -exp(-(x-0.5)^2/(2 a^2)) + b + 1  (Eq. 11)
//     with a = softplus(alpha_raw), b = softplus(beta_raw)
//   * per-output-bucket RSD for the classifier feature
// Expectations are fixed priors from RiskFeatureSet (classifier-training
// statistics); the classifier feature's expectation is the output itself.
//
// Weight normalization follows portfolio semantics (DESIGN.md §6.1): active
// weights are renormalized per pair so mu stays a valid probability.

#ifndef LEARNRISK_RISK_RISK_MODEL_H_
#define LEARNRISK_RISK_RISK_MODEL_H_

#include <string>
#include <vector>

#include "autodiff/tape.h"
#include "common/status.h"
#include "risk/risk_feature.h"

namespace learnrisk {

/// Additive floor keeping portfolio sigmas strictly positive so quantile
/// gradients exist. Shared by RiskModel and the serving ScorerSnapshot,
/// whose scoring kernels must stay bit-identical.
inline constexpr double kRiskSigmaFloor = 1e-6;

/// \brief How a pair's risk is read off its probability distribution.
enum class RiskMetric {
  kVaR,          ///< Value-at-Risk at confidence theta (the paper's choice)
  kCVaR,         ///< Conditional VaR (expected shortfall beyond VaR)
  kExpectation,  ///< distribution mean only (ablation: no fluctuation term)
};

/// \brief Model hyperparameters and initial values.
struct RiskModelOptions {
  double var_confidence = 0.9;  ///< theta (Sec. 7.1: 0.9)
  RiskMetric metric = RiskMetric::kVaR;
  double rsd_max = 1.0;         ///< upper bound of the learnable RSD
  size_t output_buckets = 10;   ///< classifier-output RSD subsets (Sec. 6.2.1)
  double init_rule_weight = 1.0;
  double init_rsd = 0.25;
  double init_alpha = 0.3;      ///< influence-function width
  double init_beta = 2.0;       ///< influence-function offset
  /// Ablation switch: when false, the classifier-output feature is dropped
  /// for pairs covered by at least one rule (pairs with no active rules keep
  /// it as a fallback so the portfolio is never empty).
  bool use_classifier_feature = true;
};

/// \brief A pair's inferred equivalence-probability distribution.
struct PairDistribution {
  double mu = 0.5;
  double sigma = 0.0;
};

/// \brief One feature's contribution to a pair's risk (interpretability
/// output; Fig. 3 "feature description" panel).
struct RiskContribution {
  std::string description;  ///< rule text or "classifier output"
  double weight = 0.0;      ///< normalized portfolio proportion
  double expectation = 0.0;
  double rsd = 0.0;
};

/// \brief The learnable risk model.
class RiskModel {
 public:
  RiskModel(RiskFeatureSet features, RiskModelOptions options = {});

  const RiskFeatureSet& features() const { return features_; }
  const RiskModelOptions& options() const { return options_; }

  // --- Scoring (plain doubles; used for ranking) ---------------------------

  /// \brief Equivalence-probability distribution of one pair.
  PairDistribution Distribution(const std::vector<uint32_t>& active_rules,
                                double classifier_output) const;

  /// \brief Mislabeling risk of one pair under the configured metric.
  double RiskScore(const std::vector<uint32_t>& active_rules,
                   double classifier_output, uint8_t machine_label) const;

  /// \brief Risk scores for a whole activation set.
  std::vector<double> Score(const RiskActivation& activation) const;

  /// \brief Ranked feature contributions for one pair (top-k by weight).
  std::vector<RiskContribution> Explain(
      const std::vector<uint32_t>& active_rules, double classifier_output,
      size_t top_k = 5) const;

  // --- Batched analytic scoring (the trainer's fast path) ------------------

  /// \brief Flat parameter layout used by RiskScoreBatch jacobians and the
  /// trainer's gradient vectors:
  ///   [0, R)        theta (raw rule weights)
  ///   [R, 2R)       phi (raw rule RSDs)
  ///   2R            alpha_raw
  ///   2R + 1        beta_raw
  ///   [2R+2, 2R+2+B) phi_out (raw per-bucket output RSDs)
  size_t num_params() const {
    return 2 * num_rules() + 2 + phi_out_.size();
  }
  size_t theta_offset() const { return 0; }
  size_t phi_offset() const { return num_rules(); }
  size_t alpha_offset() const { return 2 * num_rules(); }
  size_t beta_offset() const { return 2 * num_rules() + 1; }
  size_t phi_out_offset() const { return 2 * num_rules() + 2; }

  /// \brief Risk scores plus exact parameter Jacobians for a batch of pairs,
  /// written into contiguous SoA buffers. A pair's jacobian row is sparse —
  /// nonzero only for its active rules, alpha/beta, and its output bucket —
  /// so the rule partials are stored CSR-style: entry e in
  /// [offset[k], offset[k+1]) holds d value[k] / d theta[rule[e]] and
  /// d value[k] / d phi[rule[e]]. A rule listed twice in an activation
  /// yields two entries whose partials sum to the true derivative. Every
  /// element is rewritten on each RiskScoreBatch call, so the buffers can be
  /// reused across epochs without clearing.
  struct BatchScore {
    size_t num_params = 0;          ///< flat layout size (for callers)
    std::vector<double> value;      ///< [n] risk score per pair
    std::vector<size_t> offset;     ///< [n+1] CSR row offsets
    std::vector<uint32_t> rule;     ///< [nnz] rule index per entry
    std::vector<double> dtheta;     ///< [nnz] d value / d theta[rule]
    std::vector<double> dphi;       ///< [nnz] d value / d phi[rule]
    std::vector<double> dalpha;     ///< [n] d value / d alpha_raw
    std::vector<double> dbeta;      ///< [n] d value / d beta_raw
    std::vector<double> dbucket;    ///< [n] d value / d phi_out[bucket[k]]
    std::vector<uint32_t> bucket;   ///< [n] output bucket per pair

    /// \brief Expands row k into a dense flat-layout jacobian row
    /// (convenience for tests/tools; the trainer consumes the SoA buffers
    /// directly).
    std::vector<double> DenseRow(size_t k, size_t num_rules) const {
      std::vector<double> row(num_params, 0.0);
      for (size_t e = offset[k]; e < offset[k + 1]; ++e) {
        row[rule[e]] += dtheta[e];
        row[num_rules + rule[e]] += dphi[e];
      }
      row[2 * num_rules] = dalpha[k];
      row[2 * num_rules + 1] = dbeta[k];
      row[2 * num_rules + 2 + bucket[k]] = dbucket[k];
      return row;
    }
  };

  /// \brief Evaluates `RiskScoreOnTape`'s exact arithmetic in closed form for
  /// every pair in `indices` — same values, same sub-gradient conventions —
  /// but without recording any tape nodes. Chunk-parallel over pairs.
  void RiskScoreBatch(const RiskActivation& activation,
                      const std::vector<size_t>& indices, BatchScore* out,
                      size_t num_threads = 0) const;

  // --- Differentiable scoring (used by the trainer) ------------------------

  /// \brief Handles to the model parameters re-created on a tape.
  struct TapeParams {
    std::vector<Var> theta;  ///< raw rule weights
    std::vector<Var> phi;    ///< raw rule RSDs
    Var alpha_raw;
    Var beta_raw;
    std::vector<Var> phi_out;  ///< raw per-bucket output RSDs
  };

  /// \brief Registers all parameters as tape variables.
  TapeParams MakeTapeParams(Tape* tape) const;

  /// \brief Records the risk score of one pair on the tape.
  Var RiskScoreOnTape(Tape* tape, const TapeParams& params,
                      const std::vector<uint32_t>& active_rules,
                      double classifier_output, uint8_t machine_label) const;

  /// \brief Writes gradients-descended raw parameters back from tape values.
  void ApplyUpdate(const std::vector<double>& theta,
                   const std::vector<double>& phi, double alpha_raw,
                   double beta_raw, const std::vector<double>& phi_out);

  // --- Parameter access -----------------------------------------------------

  size_t num_rules() const { return features_.num_rules(); }
  const std::vector<double>& theta() const { return theta_; }
  const std::vector<double>& phi() const { return phi_; }
  double alpha_raw() const { return alpha_raw_; }
  double beta_raw() const { return beta_raw_; }
  const std::vector<double>& phi_out() const { return phi_out_; }

  /// \brief Effective (transformed) parameters.
  double RuleWeight(size_t j) const;
  double RuleRsd(size_t j) const;
  /// \brief Influence-function weight of the classifier output (Eq. 11).
  double OutputWeight(double classifier_output) const;
  double OutputRsd(double classifier_output) const;
  /// \brief Bucket index of a classifier output.
  size_t OutputBucket(double classifier_output) const;

 private:
  RiskFeatureSet features_;
  RiskModelOptions options_;
  std::vector<double> theta_;
  std::vector<double> phi_;
  double alpha_raw_ = 0.0;
  double beta_raw_ = 0.0;
  std::vector<double> phi_out_;
};

}  // namespace learnrisk

#endif  // LEARNRISK_RISK_RISK_MODEL_H_
