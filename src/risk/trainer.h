// Copyright 2026 The LearnRisk Authors
// Risk-model training (paper Sec. 6.2): learning-to-rank with the pairwise
// cross-entropy loss of Eq. 13-15. For a (mislabeled, correctly-labeled)
// pair (i, j) the target posterior is 1, so the per-pair loss reduces to
// -log sigmoid(gamma_i - gamma_j) = softplus(gamma_j - gamma_i); minimizing
// it maximizes AUROC (Sec. 3). Gradients flow through the truncated-normal
// VaR via the autodiff tape; parameters are updated by gradient descent
// (optionally Adam) with L1+L2 regularization on the feature weights.

#ifndef LEARNRISK_RISK_TRAINER_H_
#define LEARNRISK_RISK_TRAINER_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "risk/risk_model.h"

namespace learnrisk {

/// \brief Optimization hyperparameters (paper defaults in comments).
struct RiskTrainerOptions {
  size_t epochs = 1000;         ///< Sec. 7.1: 1000
  double learning_rate = 1e-3;  ///< Sec. 6.2.3: 0.001
  double l1 = 1e-4;             ///< L1 on effective rule weights
  double l2 = 1e-4;             ///< L2 on effective rule weights
  /// Per-epoch sampling caps (DESIGN.md §6.5): the full loss enumerates all
  /// (mislabeled x correct) pairs; these bound epoch cost while keeping the
  /// objective unbiased in expectation.
  size_t max_mislabeled_per_epoch = 256;
  size_t max_correct_per_epoch = 1024;
  size_t max_rank_pairs = 8192;
  /// Adam converges faster than plain GD at the paper's learning rate; set
  /// false for the paper-literal optimizer.
  bool use_adam = true;
  uint64_t seed = 13;
};

/// \brief Trains a RiskModel on a labeled risk-training activation set.
class RiskTrainer {
 public:
  explicit RiskTrainer(RiskTrainerOptions options = {}) : options_(options) {}

  /// \brief Tunes `model` so mislabeled pairs (mislabeled[i] == 1) rank above
  /// correct ones. Requires at least one mislabeled and one correct pair;
  /// with fewer the model is left at its prior and OK is returned (the prior
  /// model is already usable, Sec. 7.4 trains from 100 pairs upward).
  Status Train(RiskModel* model, const RiskActivation& data,
               const std::vector<uint8_t>& mislabeled);

  /// \brief Mean sampled rank loss per epoch.
  const std::vector<double>& loss_history() const { return loss_history_; }

 private:
  RiskTrainerOptions options_;
  std::vector<double> loss_history_;
};

}  // namespace learnrisk

#endif  // LEARNRISK_RISK_TRAINER_H_
