// Copyright 2026 The LearnRisk Authors
// Risk-model training (paper Sec. 6.2): learning-to-rank with the pairwise
// cross-entropy loss of Eq. 13-15. For a (mislabeled, correctly-labeled)
// pair (i, j) the target posterior is 1, so the per-pair loss reduces to
// -log sigmoid(gamma_i - gamma_j) = softplus(gamma_j - gamma_i); minimizing
// it maximizes AUROC (Sec. 3). Parameters are updated by gradient descent
// (optionally Adam) with L1+L2 regularization on the feature weights.
//
// Two gradient paths compute the same update:
//  * Fast path (default): the rank loss depends on the scores only through
//    pairwise differences, so dL/dgamma_i is a weighted sum of
//    sigmoid(gamma_j - gamma_i) terms. RiskModel::RiskScoreBatch evaluates
//    all scores plus exact per-parameter jacobian rows in one batched pass,
//    and the full gradient is a single jacobian-transpose multiply — no
//    autodiff tape is recorded.
//  * Tape path (options.use_tape): the original Sec. 6.2.3 formulation
//    through the autodiff tape, kept for parity testing. Its seeded loss
//    trajectory matches the fast path to ~1e-9 per epoch.

#ifndef LEARNRISK_RISK_TRAINER_H_
#define LEARNRISK_RISK_TRAINER_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "risk/risk_model.h"

namespace learnrisk {

/// \brief Optimization hyperparameters (paper defaults in comments).
struct RiskTrainerOptions {
  size_t epochs = 1000;         ///< Sec. 7.1: 1000
  double learning_rate = 1e-3;  ///< Sec. 6.2.3: 0.001
  double l1 = 1e-4;             ///< L1 on effective rule weights
  double l2 = 1e-4;             ///< L2 on effective rule weights
  /// Per-epoch sampling caps (DESIGN.md §6.5): the full loss enumerates all
  /// (mislabeled x correct) pairs; these bound epoch cost while keeping the
  /// objective unbiased in expectation.
  size_t max_mislabeled_per_epoch = 256;
  size_t max_correct_per_epoch = 1024;
  size_t max_rank_pairs = 8192;
  /// Adam converges faster than plain GD at the paper's learning rate; set
  /// false for the paper-literal optimizer.
  bool use_adam = true;
  uint64_t seed = 13;
  /// When true, trains through the autodiff tape (the original Sec. 6.2.3
  /// path, kept for gradient-parity testing). The default analytic fast path
  /// computes the same loss and gradients in closed form via
  /// RiskModel::RiskScoreBatch — no per-epoch tape recording — and matches
  /// the tape path's seeded loss trajectory to ~1e-9 per epoch.
  bool use_tape = false;
  /// Worker threads for batched scoring (0 = hardware concurrency).
  size_t num_threads = 0;
};

/// \brief Throughput/size counters from the last Train() call.
struct RiskTrainerStats {
  size_t epochs = 0;            ///< epochs actually run
  size_t rank_pairs = 0;        ///< rank pairs summed across epochs
  size_t scored_pairs = 0;      ///< risk-score evaluations across epochs
  size_t peak_tape_nodes = 0;   ///< tape path only; 0 on the fast path
  double train_seconds = 0.0;   ///< wall clock inside Train()
  double EpochsPerSec() const {
    return train_seconds > 0.0 ? static_cast<double>(epochs) / train_seconds
                               : 0.0;
  }
  double PairsPerSec() const {
    return train_seconds > 0.0
               ? static_cast<double>(rank_pairs) / train_seconds
               : 0.0;
  }
};

/// \brief Trains a RiskModel on a labeled risk-training activation set.
class RiskTrainer {
 public:
  explicit RiskTrainer(RiskTrainerOptions options = {}) : options_(options) {}

  /// \brief Tunes `model` so mislabeled pairs (mislabeled[i] == 1) rank above
  /// correct ones. Requires at least one mislabeled and one correct pair;
  /// with fewer the model is left at its prior and OK is returned (the prior
  /// model is already usable, Sec. 7.4 trains from 100 pairs upward).
  Status Train(RiskModel* model, const RiskActivation& data,
               const std::vector<uint8_t>& mislabeled);

  /// \brief Mean sampled rank loss per epoch.
  const std::vector<double>& loss_history() const { return loss_history_; }

  /// \brief Counters from the last Train() call.
  const RiskTrainerStats& stats() const { return stats_; }

 private:
  RiskTrainerOptions options_;
  std::vector<double> loss_history_;
  RiskTrainerStats stats_;
};

}  // namespace learnrisk

#endif  // LEARNRISK_RISK_TRAINER_H_
