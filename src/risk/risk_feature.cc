// Copyright 2026 The LearnRisk Authors

#include "risk/risk_feature.h"

#include "common/parallel.h"
#include "serve/compiled_rules.h"

namespace learnrisk {

void RiskFeatureSet::Compile() {
  compiled_ = std::make_shared<const CompiledRuleSet>(rules_);
}

const CompiledRuleSet& RiskFeatureSet::compiled() const {
  // Default-constructed sets (e.g. a not-yet-fitted pipeline member) never
  // ran Compile; give them the empty plan instead of a null deref.
  static const CompiledRuleSet kEmptyPlan{std::vector<Rule>()};
  return compiled_ == nullptr ? kEmptyPlan : *compiled_;
}

RiskFeatureSet RiskFeatureSet::Build(std::vector<Rule> rules,
                                     const FeatureMatrix& train_features,
                                     const std::vector<uint8_t>& train_labels) {
  RiskFeatureSet set;
  set.rules_ = std::move(rules);
  set.expectations_.resize(set.rules_.size());
  set.train_support_.resize(set.rules_.size());
  ParallelFor(set.rules_.size(), [&](size_t j) {
    const Rule& rule = set.rules_[j];
    size_t covered = 0;
    size_t matches = 0;
    for (size_t i = 0; i < train_features.rows(); ++i) {
      if (!rule.Matches(train_features.row(i))) continue;
      ++covered;
      matches += train_labels[i];
    }
    set.train_support_[j] = covered;
    // Add-one smoothing: mu = (m + 1) / (n + 2).
    set.expectations_[j] = (static_cast<double>(matches) + 1.0) /
                           (static_cast<double>(covered) + 2.0);
  });
  set.Compile();
  return set;
}

RiskFeatureSet RiskFeatureSet::FromParts(std::vector<Rule> rules,
                                         std::vector<double> expectations,
                                         std::vector<size_t> train_support) {
  RiskFeatureSet set;
  set.rules_ = std::move(rules);
  set.expectations_ = std::move(expectations);
  set.train_support_ = std::move(train_support);
  set.Compile();
  return set;
}

std::vector<uint32_t> RiskFeatureSet::ActiveRules(
    const double* metric_row) const {
  std::vector<uint32_t> active;
  for (size_t j = 0; j < rules_.size(); ++j) {
    if (rules_[j].Matches(metric_row)) {
      active.push_back(static_cast<uint32_t>(j));
    }
  }
  return active;
}

double RiskFeatureSet::Coverage(const FeatureMatrix& features) const {
  return compiled().Coverage(features);
}

RiskActivation ComputeActivation(const RiskFeatureSet& features,
                                 const FeatureMatrix& metric_features,
                                 const std::vector<double>& classifier_probs) {
  RiskActivation activation;
  const size_t n = metric_features.rows();
  activation.active.resize(n);
  activation.classifier_output = classifier_probs;
  activation.machine_label.resize(n);
  features.compiled().EvaluateInto(metric_features, &activation.active);
  for (size_t i = 0; i < n; ++i) {
    activation.machine_label[i] = classifier_probs[i] >= 0.5 ? 1 : 0;
  }
  return activation;
}

RiskActivation ComputeActivationNaive(
    const RiskFeatureSet& features, const FeatureMatrix& metric_features,
    const std::vector<double>& classifier_probs) {
  RiskActivation activation;
  const size_t n = metric_features.rows();
  activation.active.resize(n);
  activation.classifier_output = classifier_probs;
  activation.machine_label.resize(n);
  ParallelFor(n, [&](size_t i) {
    activation.active[i] = features.ActiveRules(metric_features.row(i));
    activation.machine_label[i] = classifier_probs[i] >= 0.5 ? 1 : 0;
  });
  return activation;
}

std::vector<uint8_t> MislabelFlags(const std::vector<uint8_t>& machine_labels,
                                   const std::vector<uint8_t>& truth_labels) {
  std::vector<uint8_t> flags(machine_labels.size());
  for (size_t i = 0; i < machine_labels.size(); ++i) {
    flags[i] = machine_labels[i] != truth_labels[i] ? 1 : 0;
  }
  return flags;
}

}  // namespace learnrisk
