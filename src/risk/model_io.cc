// Copyright 2026 The LearnRisk Authors

#include "risk/model_io.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace learnrisk {
namespace {

// Rule-text fields may contain spaces; predicates encode the name with '|'.
std::string EscapeName(const std::string& name) {
  std::string out;
  for (char c : name) out += (c == '|' || c == ' ') ? '_' : c;
  return out;
}

}  // namespace

std::string SerializeRiskModel(const RiskModel& model,
                               const RiskTrainerOptions* trainer) {
  std::ostringstream out;
  out.precision(17);  // max_digits10: doubles round-trip exactly
  const RiskModelOptions& opts = model.options();
  out << "learnrisk-model v1\n";
  out << "options " << opts.var_confidence << ' '
      << static_cast<int>(opts.metric) << ' ' << opts.rsd_max << ' '
      << opts.output_buckets << ' ' << (opts.use_classifier_feature ? 1 : 0)
      << '\n';
  if (trainer != nullptr) {
    out << "trainer " << trainer->epochs << ' ' << trainer->learning_rate
        << ' ' << trainer->l1 << ' ' << trainer->l2 << ' '
        << trainer->max_mislabeled_per_epoch << ' '
        << trainer->max_correct_per_epoch << ' ' << trainer->max_rank_pairs
        << ' ' << (trainer->use_adam ? 1 : 0) << ' '
        << (trainer->use_tape ? 1 : 0) << ' ' << trainer->seed << '\n';
  }
  out << "params " << model.alpha_raw() << ' ' << model.beta_raw() << '\n';
  out << "phi_out";
  for (double p : model.phi_out()) out << ' ' << p;
  out << '\n';
  const RiskFeatureSet& features = model.features();
  for (size_t j = 0; j < features.num_rules(); ++j) {
    const Rule& rule = features.rule(j);
    out << "rule " << (rule.label == RuleClass::kMatching ? 1 : 0) << ' '
        << rule.support << ' ' << rule.match_rate << ' ' << rule.impurity
        << ' ' << features.expectation(j) << ' ' << features.train_support(j)
        << ' ' << model.theta()[j] << ' ' << model.phi()[j] << ' '
        << rule.predicates.size();
    for (const Predicate& p : rule.predicates) {
      out << ' ' << p.metric << ' ' << EscapeName(p.metric_name) << ' '
          << (p.greater ? 1 : 0) << ' ' << p.threshold;
    }
    out << '\n';
  }
  // Explicit end-of-payload record: truncated files are otherwise
  // undetectable when the cut lands on a parseable prefix (a chopped
  // trailing number like "0." still reads as a valid double).
  out << "end\n";
  return out.str();
}

Result<RiskModel> DeserializeRiskModel(const std::string& text,
                                       RiskTrainerOptions* trainer_out) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || Trim(line) != "learnrisk-model v1") {
    return Status::InvalidArgument("not a learnrisk-model v1 payload");
  }

  RiskModelOptions options;
  double alpha_raw = 0.0;
  double beta_raw = 0.0;
  std::vector<double> phi_out;
  std::vector<Rule> rules;
  std::vector<double> expectations;
  std::vector<size_t> supports;
  std::vector<double> theta;
  std::vector<double> phi;
  bool saw_end = false;

  while (std::getline(in, line)) {
    line = Trim(line);
    if (line.empty() || line[0] == '#') continue;
    if (saw_end) {
      return Status::InvalidArgument("record after end marker: " + line);
    }
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "end") {
      saw_end = true;
    } else if (tag == "options") {
      int metric = 0;
      int use_out = 1;
      ls >> options.var_confidence >> metric >> options.rsd_max >>
          options.output_buckets >> use_out;
      if (!ls || metric < 0 || metric > 2 || options.output_buckets == 0) {
        return Status::InvalidArgument("malformed options line");
      }
      options.metric = static_cast<RiskMetric>(metric);
      options.use_classifier_feature = use_out != 0;
    } else if (tag == "trainer") {
      RiskTrainerOptions trainer;
      int use_adam = 1;
      int use_tape = 0;
      ls >> trainer.epochs >> trainer.learning_rate >> trainer.l1 >>
          trainer.l2 >> trainer.max_mislabeled_per_epoch >>
          trainer.max_correct_per_epoch >> trainer.max_rank_pairs >>
          use_adam >> use_tape >> trainer.seed;
      if (!ls) return Status::InvalidArgument("malformed trainer line");
      trainer.use_adam = use_adam != 0;
      trainer.use_tape = use_tape != 0;
      if (trainer_out != nullptr) *trainer_out = trainer;
    } else if (tag == "params") {
      ls >> alpha_raw >> beta_raw;
      if (!ls) return Status::InvalidArgument("malformed params line");
    } else if (tag == "phi_out") {
      double v;
      while (ls >> v) phi_out.push_back(v);
    } else if (tag == "rule") {
      Rule rule;
      int label = 0;
      double expectation = 0.0;
      size_t train_support = 0;
      double t = 0.0;
      double p = 0.0;
      size_t npreds = 0;
      ls >> label >> rule.support >> rule.match_rate >> rule.impurity >>
          expectation >> train_support >> t >> p >> npreds;
      if (!ls) return Status::InvalidArgument("malformed rule line");
      rule.label = label ? RuleClass::kMatching : RuleClass::kUnmatching;
      for (size_t k = 0; k < npreds; ++k) {
        Predicate pred;
        int greater = 0;
        ls >> pred.metric >> pred.metric_name >> greater >> pred.threshold;
        if (!ls) return Status::InvalidArgument("malformed predicate");
        pred.greater = greater != 0;
        rule.predicates.push_back(std::move(pred));
      }
      rules.push_back(std::move(rule));
      expectations.push_back(expectation);
      supports.push_back(train_support);
      theta.push_back(t);
      phi.push_back(p);
    } else {
      return Status::InvalidArgument("unknown record tag: " + tag);
    }
  }
  if (!saw_end) {
    return Status::InvalidArgument(
        "truncated model payload: missing end record");
  }
  if (phi_out.empty()) {
    return Status::InvalidArgument("missing phi_out record");
  }
  if (phi_out.size() != options.output_buckets) {
    return Status::InvalidArgument("phi_out length != output_buckets");
  }

  RiskModel model(RiskFeatureSet::FromParts(std::move(rules),
                                            std::move(expectations),
                                            std::move(supports)),
                  options);
  model.ApplyUpdate(theta, phi, alpha_raw, beta_raw, phi_out);
  return model;
}

Status SaveRiskModel(const RiskModel& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << SerializeRiskModel(model);
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<RiskModel> LoadRiskModel(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return DeserializeRiskModel(buf.str());
}

}  // namespace learnrisk
