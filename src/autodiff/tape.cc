// Copyright 2026 The LearnRisk Authors

#include "autodiff/tape.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math_util.h"

namespace learnrisk {

double Var::value() const { return tape_->ValueAt(index_); }

Var Tape::Variable(double value) {
  Node node;
  node.value = value;
  nodes_.push_back(node);
  return Var(this, static_cast<int32_t>(nodes_.size()) - 1);
}

Var Tape::Unary(double value, Var input, double grad_input) {
  assert(input.tape() == this);
  Node node;
  node.value = value;
  node.parent[0] = input.index();
  node.pgrad[0] = grad_input;
  nodes_.push_back(node);
  return Var(this, static_cast<int32_t>(nodes_.size()) - 1);
}

Var Tape::Binary(double value, Var a, double grad_a, Var b, double grad_b) {
  assert(a.tape() == this && b.tape() == this);
  Node node;
  node.value = value;
  node.parent[0] = a.index();
  node.pgrad[0] = grad_a;
  node.parent[1] = b.index();
  node.pgrad[1] = grad_b;
  nodes_.push_back(node);
  return Var(this, static_cast<int32_t>(nodes_.size()) - 1);
}

void Tape::Backward(Var output) {
  assert(output.tape() == this);
  // Self-zeroing: reset the live subrange so back-to-back Backward calls on
  // a rewound tape cannot accumulate gradients from a previous epoch.
  for (int32_t i = 0; i <= output.index(); ++i) nodes_[i].grad = 0.0;
  nodes_[output.index()].grad = 1.0;
  for (int32_t i = output.index(); i >= 0; --i) {
    const Node& node = nodes_[i];
    if (node.grad == 0.0) continue;
    for (int k = 0; k < 2; ++k) {
      if (node.parent[k] >= 0) {
        nodes_[node.parent[k]].grad += node.grad * node.pgrad[k];
      }
    }
  }
}

void Tape::ZeroGrad() {
  for (Node& node : nodes_) node.grad = 0.0;
}

void Tape::Clear() { nodes_.clear(); }

void Tape::Rewind(size_t mark) {
  assert(mark <= nodes_.size());
  nodes_.resize(mark);
}

void Tape::SetValue(Var v, double value) {
  assert(v.tape() == this);
  assert(nodes_[v.index()].parent[0] < 0 && nodes_[v.index()].parent[1] < 0);
  nodes_[v.index()].value = value;
}

// --- Arithmetic -------------------------------------------------------------

Var operator+(Var a, Var b) {
  return a.tape()->Binary(a.value() + b.value(), a, 1.0, b, 1.0);
}
Var operator+(Var a, double b) {
  return a.tape()->Unary(a.value() + b, a, 1.0);
}
Var operator+(double a, Var b) { return b + a; }

Var operator-(Var a, Var b) {
  return a.tape()->Binary(a.value() - b.value(), a, 1.0, b, -1.0);
}
Var operator-(Var a, double b) {
  return a.tape()->Unary(a.value() - b, a, 1.0);
}
Var operator-(double a, Var b) {
  return b.tape()->Unary(a - b.value(), b, -1.0);
}
Var operator-(Var a) { return a.tape()->Unary(-a.value(), a, -1.0); }

Var operator*(Var a, Var b) {
  return a.tape()->Binary(a.value() * b.value(), a, b.value(), b, a.value());
}
Var operator*(Var a, double b) {
  return a.tape()->Unary(a.value() * b, a, b);
}
Var operator*(double a, Var b) { return b * a; }

// Division guard (SafeDenominator, shared via math_util.h): like Log's input
// floor, the denominator magnitude is clamped to 1e-300 (sign preserved) so
// a degenerate divisor yields a huge but finite quotient instead of a
// NaN/inf that would poison the whole backward pass.
Var operator/(Var a, Var b) {
  const double bv = SafeDenominator(b.value());
  const double v = a.value() / bv;
  // d(a/b)/db written as -(a/b)/b: avoids squaring bv, which would underflow
  // to zero (and produce 0/0 = NaN) for subnormal denominators.
  return a.tape()->Binary(v, a, 1.0 / bv, b, -v / bv);
}
Var operator/(Var a, double b) { return a * (1.0 / b); }
Var operator/(double a, Var b) {
  const double bv = SafeDenominator(b.value());
  const double v = a / bv;
  return b.tape()->Unary(v, b, -v / bv);
}

// --- Elementary functions ----------------------------------------------------

Var Exp(Var a) {
  const double v = std::exp(a.value());
  return a.tape()->Unary(v, a, v);
}

Var Log(Var a) {
  const double x = std::max(a.value(), 1e-300);
  return a.tape()->Unary(std::log(x), a, 1.0 / x);
}

Var Sqrt(Var a) {
  const double v = std::sqrt(std::max(a.value(), 0.0));
  const double g = v > 0.0 ? 0.5 / v : 0.0;
  return a.tape()->Unary(v, a, g);
}

Var Pow(Var a, double p) {
  const double x = a.value();
  const double v = std::pow(x, p);
  const double g = x != 0.0 ? p * v / x : 0.0;
  return a.tape()->Unary(v, a, g);
}

Var Square(Var a) {
  const double x = a.value();
  return a.tape()->Unary(x * x, a, 2.0 * x);
}

Var Abs(Var a) {
  const double x = a.value();
  const double g = x > 0.0 ? 1.0 : (x < 0.0 ? -1.0 : 0.0);
  return a.tape()->Unary(std::fabs(x), a, g);
}

Var SigmoidV(Var a) {
  const double s = Sigmoid(a.value());
  return a.tape()->Unary(s, a, s * (1.0 - s));
}

Var SoftplusV(Var a) {
  return a.tape()->Unary(Softplus(a.value()), a, Sigmoid(a.value()));
}

Var Tanh(Var a) {
  const double t = std::tanh(a.value());
  return a.tape()->Unary(t, a, 1.0 - t * t);
}

// --- Piecewise ---------------------------------------------------------------

Var Max(Var a, Var b) {
  const bool pick_a = a.value() >= b.value();
  return a.tape()->Binary(pick_a ? a.value() : b.value(), a,
                          pick_a ? 1.0 : 0.0, b, pick_a ? 0.0 : 1.0);
}

Var Min(Var a, Var b) {
  const bool pick_a = a.value() <= b.value();
  return a.tape()->Binary(pick_a ? a.value() : b.value(), a,
                          pick_a ? 1.0 : 0.0, b, pick_a ? 0.0 : 1.0);
}

Var ClampV(Var a, double lo, double hi) {
  const double x = a.value();
  const double v = Clamp(x, lo, hi);
  const double g = (x > lo && x < hi) ? 1.0 : 0.0;
  return a.tape()->Unary(v, a, g);
}

// --- Gaussian ----------------------------------------------------------------

Var NormalCdfV(Var a) {
  return a.tape()->Unary(NormalCdf(a.value()), a, NormalPdf(a.value()));
}

Var NormalQuantileV(Var u) {
  constexpr double kEps = 1e-12;
  const double x = u.value();
  const double clamped = Clamp(x, kEps, 1.0 - kEps);
  const double q = NormalQuantile(clamped);
  // dq/du = 1 / phi(q); bounded because u was clamped away from {0, 1}.
  const double g = 1.0 / std::max(NormalPdf(q), 1e-300);
  return u.tape()->Unary(q, u, g);
}

}  // namespace learnrisk
