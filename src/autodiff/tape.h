// Copyright 2026 The LearnRisk Authors
// Tape-based reverse-mode automatic differentiation over scalars. This is the
// in-repo substitute for the TensorFlow dependency of the paper's Sec. 6.2.3:
// the risk-model trainer records the pairwise rank loss on a tape and
// back-propagates exact gradients to the feature weights and variances.
//
// Usage:
//   Tape tape;
//   Var w = tape.Variable(0.3);
//   Var loss = Log(1.0 + Exp(-w));
//   tape.Backward(loss);
//   double g = tape.Gradient(w);
//
// Nodes are recorded in topological order by construction, so the backward
// pass is a single reverse sweep. Gradients through the normal quantile use
// d Phi^{-1}(u) / du = 1 / phi(Phi^{-1}(u)); Clamp/Min/Max use the standard
// sub-gradient conventions.

#ifndef LEARNRISK_AUTODIFF_TAPE_H_
#define LEARNRISK_AUTODIFF_TAPE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace learnrisk {

class Tape;

/// \brief Handle to a scalar node on a Tape. Cheap to copy; valid until the
/// owning tape is cleared or destroyed.
class Var {
 public:
  Var() : tape_(nullptr), index_(-1) {}

  double value() const;
  Tape* tape() const { return tape_; }
  int32_t index() const { return index_; }
  bool valid() const { return tape_ != nullptr; }

 private:
  friend class Tape;
  Var(Tape* tape, int32_t index) : tape_(tape), index_(index) {}

  Tape* tape_;
  int32_t index_;
};

/// \brief Records scalar operations and computes gradients in reverse.
class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// \brief A differentiable leaf.
  Var Variable(double value);

  /// \brief A constant leaf (gradient is tracked but typically unused).
  Var Constant(double value) { return Variable(value); }

  /// \brief Records a unary op: result value plus d(result)/d(input).
  Var Unary(double value, Var input, double grad_input);

  /// \brief Records a binary op with both partial derivatives.
  Var Binary(double value, Var a, double grad_a, Var b, double grad_b);

  /// \brief Runs the reverse sweep from `output` (seed gradient 1.0).
  ///
  /// Contract: Backward is self-zeroing — it resets the gradients of every
  /// node up to and including `output` before seeding, so repeated calls
  /// (e.g. one per training epoch on a rewound tape) never accumulate stale
  /// gradients. The sweep is restricted to the output's live subrange
  /// [0, output.index()]; nodes recorded after `output` are untouched.
  void Backward(Var output);

  /// \brief d(output)/d(v) after Backward().
  double Gradient(Var v) const { return nodes_[v.index()].grad; }

  /// \brief Resets all gradients to zero, keeping the recorded graph.
  void ZeroGrad();

  /// \brief Discards all nodes (start of a new iteration).
  void Clear();

  /// \brief Pre-allocates arena capacity for `n` nodes so epoch-sized graphs
  /// record without reallocation.
  void Reserve(size_t n) { nodes_.reserve(n); }

  /// \brief Marks the current tape length for a later Rewind(). Typical use:
  /// record the parameter leaves once, checkpoint, then per epoch rewind and
  /// re-record only the loss subgraph.
  size_t Checkpoint() const { return nodes_.size(); }

  /// \brief Truncates the tape back to a Checkpoint() mark. Handles created
  /// at indices below the mark stay valid; later ones are invalidated. The
  /// arena capacity is retained, so re-recording allocates nothing.
  void Rewind(size_t mark);

  /// \brief Overwrites the value of a leaf (a node with no parents), e.g. to
  /// refresh parameter values on a rewound tape. Interior nodes cannot be
  /// rewritten: their cached partials would go stale.
  void SetValue(Var v, double value);

  size_t size() const { return nodes_.size(); }
  double ValueAt(int32_t index) const { return nodes_[index].value; }

 private:
  struct Node {
    double value = 0.0;
    double grad = 0.0;
    int32_t parent[2] = {-1, -1};
    double pgrad[2] = {0.0, 0.0};
  };
  std::vector<Node> nodes_;
};

// --- Arithmetic -------------------------------------------------------------

Var operator+(Var a, Var b);
Var operator+(Var a, double b);
Var operator+(double a, Var b);
Var operator-(Var a, Var b);
Var operator-(Var a, double b);
Var operator-(double a, Var b);
Var operator-(Var a);
Var operator*(Var a, Var b);
Var operator*(Var a, double b);
Var operator*(double a, Var b);
Var operator/(Var a, Var b);
Var operator/(Var a, double b);
Var operator/(double a, Var b);

// --- Elementary functions ----------------------------------------------------

/// \brief exp(a).
Var Exp(Var a);
/// \brief Natural log; input is floored at 1e-300 to avoid -inf.
Var Log(Var a);
/// \brief sqrt(a) for a >= 0.
Var Sqrt(Var a);
/// \brief a^p for constant p.
Var Pow(Var a, double p);
/// \brief Square a*a (single node).
Var Square(Var a);
/// \brief |a| with subgradient 0 at 0.
Var Abs(Var a);
/// \brief Numerically-stable logistic function.
Var SigmoidV(Var a);
/// \brief Numerically-stable softplus log(1+exp(a)).
Var SoftplusV(Var a);
/// \brief tanh(a).
Var Tanh(Var a);

// --- Piecewise ---------------------------------------------------------------

/// \brief max(a, b) with gradient flowing to the larger input (ties -> a).
Var Max(Var a, Var b);
/// \brief min(a, b) with gradient flowing to the smaller input (ties -> a).
Var Min(Var a, Var b);
/// \brief Clamps into [lo, hi]; gradient 1 strictly inside, 0 outside.
Var ClampV(Var a, double lo, double hi);

// --- Gaussian ----------------------------------------------------------------

/// \brief Standard normal CDF Phi(a).
Var NormalCdfV(Var a);
/// \brief Standard normal quantile Phi^{-1}(u); u is clamped into
/// [1e-12, 1-1e-12] with pass-through gradient at the clamp.
Var NormalQuantileV(Var u);

}  // namespace learnrisk

#endif  // LEARNRISK_AUTODIFF_TAPE_H_
